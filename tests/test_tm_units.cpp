// Single-threaded unit tests for every TM implementation: transactional
// semantics (read-your-writes, isolation until commit, abort rollback), the
// instrumentation properties each theorem requires, and the runtime
// adapter.  Thread contexts are interleaved deterministically from one OS
// thread — the TM templates are plain objects, so this drives exact
// schedules without real concurrency.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sim/memory_policy.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/mvcc_store.hpp"
#include "tm/runtime.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/tl2_tm.hpp"
#include "tm/versioned_write_tm.hpp"
#include "tm/write_as_tx_tm.hpp"

namespace jungle {
namespace {

constexpr std::size_t kVars = 4;

// ---------------------------------------------------------------- VarMap

TEST(VarMap, PutFindOverwriteClear) {
  VarMap m;
  EXPECT_EQ(m.find(1), nullptr);
  m.put(1, 10);
  m.put(2, 20);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10u);
  m.put(1, 11);
  EXPECT_EQ(*m.find(1), 11u);
  EXPECT_EQ(m.size(), 2u);
  m.clear();
  EXPECT_TRUE(m.empty());
}

// ------------------------------------------------------------- WriteTag

TEST(WriteTag, RoundTripsPidVersion) {
  const Word tag = WriteTag::pack(37, 123456789);
  EXPECT_EQ(WriteTag::pid(tag), 37u);
  EXPECT_EQ(WriteTag::version(tag), 123456789u);
  EXPECT_NE(WriteTag::pack(2, 3), WriteTag::pack(2, 4));
  EXPECT_NE(WriteTag::pack(2, 3), WriteTag::pack(3, 3));
}

TEST(WriteTag, StoredTagsAreNeverTheInitialZero) {
  // Versions are pre-incremented before every tagged store, so a written
  // tag always differs from the zero-initialized tag word — a commit CAS
  // expecting 0 ("never nt-written") cannot be fooled by a real write.
  EXPECT_NE(WriteTag::pack(0, 1), 0u);
  EXPECT_EQ(WriteTag::pack(0, 0), 0u);  // the reserved initial encoding
}

// ------------------------------------------------ generic TM behaviors

template <class Tm>
class TmFixture : public ::testing::Test {
 protected:
  TmFixture()
      : mem_(Tm::memoryWords(kVars)),
        tm_(mem_, kVars),
        t0_(tm_.makeThread(0)),
        t1_(tm_.makeThread(1)) {}

  Word readTx(typename Tm::Thread& t, ObjectId x) {
    auto v = tm_.txRead(t, x);
    if constexpr (std::is_same_v<decltype(v), std::optional<Word>>) {
      EXPECT_TRUE(v.has_value());
      return v.value_or(0);
    } else {
      return v;
    }
  }

  NativeMemory mem_;
  Tm tm_;
  typename Tm::Thread t0_;
  typename Tm::Thread t1_;
};

using AllTms =
    ::testing::Types<GlobalLockTm<NativeMemory>, WriteAsTxTm<NativeMemory>,
                     VersionedWriteTm<NativeMemory>, Tl2Tm<NativeMemory>,
                     StrongAtomicityTm<NativeMemory>, SiTm<NativeMemory>,
                     SiSsnTm<NativeMemory>>;

TYPED_TEST_SUITE(TmFixture, AllTms);

TYPED_TEST(TmFixture, CommittedWritesBecomeVisible) {
  this->tm_.txStart(this->t0_);
  this->tm_.txWrite(this->t0_, 0, 5);
  this->tm_.txWrite(this->t0_, 1, 6);
  EXPECT_TRUE(this->tm_.txCommit(this->t0_));
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 0), 5u);
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 1), 6u);
}

TYPED_TEST(TmFixture, ReadYourOwnWrites) {
  this->tm_.txStart(this->t0_);
  this->tm_.txWrite(this->t0_, 0, 7);
  EXPECT_EQ(this->readTx(this->t0_, 0), 7u);
  this->tm_.txWrite(this->t0_, 0, 8);
  EXPECT_EQ(this->readTx(this->t0_, 0), 8u);
  EXPECT_TRUE(this->tm_.txCommit(this->t0_));
  EXPECT_EQ(this->tm_.ntRead(this->t0_, 0), 8u);
}

TYPED_TEST(TmFixture, AbortDiscardsWrites) {
  this->tm_.txStart(this->t0_);
  this->tm_.txWrite(this->t0_, 0, 9);
  this->tm_.txAbort(this->t0_);
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 0), 0u);
}

TYPED_TEST(TmFixture, ReadsSeePriorNtWrites) {
  this->tm_.ntWrite(this->t1_, 2, 4);
  this->tm_.txStart(this->t0_);
  EXPECT_EQ(this->readTx(this->t0_, 2), 4u);
  EXPECT_TRUE(this->tm_.txCommit(this->t0_));
}

TYPED_TEST(TmFixture, NtRoundTrip) {
  this->tm_.ntWrite(this->t0_, 3, 11);
  EXPECT_EQ(this->tm_.ntRead(this->t0_, 3), 11u);
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 3), 11u);
}

TYPED_TEST(TmFixture, SequentialTransactionsCompose) {
  for (Word i = 1; i <= 5; ++i) {
    this->tm_.txStart(this->t0_);
    const Word cur = this->readTx(this->t0_, 0);
    this->tm_.txWrite(this->t0_, 0, cur + i);
    EXPECT_TRUE(this->tm_.txCommit(this->t0_));
  }
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 0), 15u);
}

// ----------------------------------- deferred update (lazy write-back)

TYPED_TEST(TmFixture, UncommittedWritesInvisibleToNtReads) {
  this->tm_.txStart(this->t0_);
  this->tm_.txWrite(this->t0_, 0, 42);
  // All our TMs defer updates at least until commit begins: a plain read
  // from another thread still sees the old value.
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 0), 0u);
  EXPECT_TRUE(this->tm_.txCommit(this->t0_));
  EXPECT_EQ(this->tm_.ntRead(this->t1_, 0), 42u);
}

// ------------------------------------------ TL2-specific conflict logic

TEST(Tl2, ConflictingCommitAbortsReader) {
  NativeMemory mem(Tl2Tm<NativeMemory>::memoryWords(kVars));
  Tl2Tm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  ASSERT_TRUE(tm.txRead(t0, 0).has_value());
  // t1 commits a write to var 0, bumping its version past t0's rv.
  tm.txStart(t1);
  tm.txWrite(t1, 0, 5);
  ASSERT_TRUE(tm.txCommit(t1));
  // t0's commit-time validation must now fail its read set.
  tm.txWrite(t0, 1, 9);
  EXPECT_FALSE(tm.txCommit(t0));
  EXPECT_EQ(tm.ntRead(t1, 1), 0u);  // t0's write never landed
}

TEST(Tl2, StaleReadAbortsImmediately) {
  NativeMemory mem(Tl2Tm<NativeMemory>::memoryWords(kVars));
  Tl2Tm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);  // rv sampled now
  tm.txStart(t1);
  tm.txWrite(t1, 0, 5);
  ASSERT_TRUE(tm.txCommit(t1));
  // Var 0's version now exceeds t0's rv: the read itself aborts.
  EXPECT_FALSE(tm.txRead(t0, 0).has_value());
  EXPECT_EQ(tm.abortCount(t0), 1u);
  EXPECT_FALSE(t0.inTx);
}

TEST(Tl2, ReadOnlyTransactionCommitsWithoutLocks) {
  NativeMemory mem(Tl2Tm<NativeMemory>::memoryWords(kVars));
  Tl2Tm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  tm.txStart(t0);
  EXPECT_TRUE(tm.txRead(t0, 0).has_value());
  EXPECT_TRUE(tm.txRead(t0, 1).has_value());
  EXPECT_TRUE(tm.txCommit(t0));
}

TEST(StrongAtomicity, NtWriteAbortsConcurrentTransaction) {
  NativeMemory mem(StrongAtomicityTm<NativeMemory>::memoryWords(kVars));
  StrongAtomicityTm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  ASSERT_TRUE(tm.txRead(t0, 0).has_value());
  tm.ntWrite(t1, 0, 5);  // instrumented: bumps var 0's version
  tm.txWrite(t0, 1, 7);
  EXPECT_FALSE(tm.txCommit(t0));  // read-set validation fails
  EXPECT_EQ(tm.ntRead(t1, 0), 5u);
  EXPECT_EQ(tm.ntRead(t1, 1), 0u);
}

TEST(Tl2Weak, LostNtWriteDemonstratesWeakAtomicity) {
  // The motivating unsafety: an uninstrumented write racing a transaction
  // is silently lost because it does not touch the record.
  NativeMemory mem(Tl2Tm<NativeMemory>::memoryWords(kVars));
  Tl2Tm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  ASSERT_EQ(tm.txRead(t0, 0).value_or(99), 0u);
  tm.ntWrite(t1, 0, 5);      // plain store, invisible to validation
  tm.txWrite(t0, 0, 1);
  EXPECT_TRUE(tm.txCommit(t0));  // commits despite the intervening write
  EXPECT_EQ(tm.ntRead(t1, 0), 1u);  // the 5 is gone
}

TEST(StrongAtomicity, SameRaceIsDetected) {
  NativeMemory mem(StrongAtomicityTm<NativeMemory>::memoryWords(kVars));
  StrongAtomicityTm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  ASSERT_EQ(tm.txRead(t0, 0).value_or(99), 0u);
  tm.ntWrite(t1, 0, 5);  // instrumented
  tm.txWrite(t0, 0, 1);
  EXPECT_FALSE(tm.txCommit(t0));  // detected, transaction aborts
  EXPECT_EQ(tm.ntRead(t1, 0), 5u);  // the plain write survives
}

// ------------------------------------- VersionedWriteTm specific checks

TEST(VersionedWrite, RacyNtWriteBeatsTheCommitCas) {
  // Theorem 5's key situation: a plain write lands between the
  // transaction's read and its commit CAS.  The CAS fails, which is
  // equivalent to the write being ordered after the transaction.
  NativeMemory mem(VersionedWriteTm<NativeMemory>::memoryWords(kVars));
  VersionedWriteTm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  tm.txWrite(t0, 0, 1);      // readset snapshot of var 0 taken here
  tm.ntWrite(t1, 0, 5);      // tagged store wins
  EXPECT_TRUE(tm.txCommit(t0));
  EXPECT_EQ(tm.ntRead(t1, 0), 5u);  // nt write ordered after the tx
}

TEST(VersionedWrite, AbaPatternCannotFoolTheCas) {
  // Two racy writes restore the same value; without tags the commit CAS
  // would succeed and effectively reorder the transaction between them.
  // With (pid, version) tags the CAS fails.
  NativeMemory mem(VersionedWriteTm<NativeMemory>::memoryWords(kVars));
  VersionedWriteTm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.ntWrite(t1, 0, 3);
  tm.txStart(t0);
  tm.txWrite(t0, 0, 1);
  tm.ntWrite(t1, 0, 9);
  tm.ntWrite(t1, 0, 3);  // same value as the snapshot, different tag
  EXPECT_TRUE(tm.txCommit(t0));
  EXPECT_EQ(tm.ntRead(t1, 0), 3u);  // the transaction's CAS failed
}

TEST(VersionedWrite, FullWidthValuesRoundTrip) {
  // The two-word scheme (value word + tag word) keeps values full 64-bit;
  // the old packed encoding capped them at 32.
  NativeMemory mem(VersionedWriteTm<NativeMemory>::memoryWords(kVars));
  VersionedWriteTm<NativeMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  tm.ntWrite(t0, 0, ~0ULL);
  EXPECT_EQ(tm.ntRead(t0, 0), ~0ULL);
  tm.ntWrite(t0, 1, (1ULL << 32) + 7);
  EXPECT_EQ(tm.ntRead(t0, 1), (1ULL << 32) + 7);
}

// ------------------------------------- SSN read-only real-time anomaly
//
// Fuzz-found (traces mode, --tm si-ssn): a process commits a write, then
// a later read-only transaction on the same process reads a version that
// a concurrent stale-snapshot writer is about to overwrite.  The
// serialization needs  writer < committed-write < read-only < writer — a
// cycle — so one of the two transactions that close it must abort.
// Before the fix, read-only transactions and nt reads skipped SSN
// certification entirely and the cycle committed.

class SsnReadOnlyRealTime : public ::testing::Test {
 protected:
  SsnReadOnlyRealTime()
      : mem_(SiSsnTm<NativeMemory>::memoryWords(kVars)),
        tm_(mem_, kVars),
        writer_(tm_.makeThread(0)),
        other_(tm_.makeThread(1)) {}

  NativeMemory mem_;
  SiSsnTm<NativeMemory> tm_;
  SiSsnTm<NativeMemory>::Thread writer_;
  SiSsnTm<NativeMemory>::Thread other_;
};

TEST_F(SsnReadOnlyRealTime, ReaderCommitsFirstWriterAborts) {
  tm_.txStart(writer_);                       // rv = 0
  EXPECT_EQ(*tm_.txRead(writer_, 2), 0u);     // stale once x2 commits
  tm_.ntWrite(other_, 2, 2);                  // x2 := 2 at ts 1
  tm_.txStart(other_);                        // read-only, rv = 1
  EXPECT_EQ(*tm_.txRead(other_, 1), 0u);
  EXPECT_TRUE(tm_.txCommit(other_));          // raises pstamp(x1@0) to 1
  tm_.txWrite(writer_, 1, 9);
  EXPECT_FALSE(tm_.txCommit(writer_));        // pi = 1 >= eta = 1
  EXPECT_EQ(writer_.ssnAborts, 1u);
}

TEST_F(SsnReadOnlyRealTime, WriterCommitsFirstReaderAborts) {
  tm_.txStart(writer_);                       // rv = 0
  EXPECT_EQ(*tm_.txRead(writer_, 2), 0u);
  tm_.ntWrite(other_, 2, 2);                  // x2 := 2 at ts 1
  tm_.txStart(other_);                        // read-only, rv = 1
  EXPECT_EQ(*tm_.txRead(other_, 1), 0u);
  tm_.txWrite(writer_, 1, 9);
  EXPECT_TRUE(tm_.txCommit(writer_));         // seals sstamp(x1@0) = 1
  EXPECT_FALSE(tm_.txCommit(other_));         // sstamp 1 <= rv 1
  EXPECT_EQ(other_.ssnAborts, 1u);
}

TEST_F(SsnReadOnlyRealTime, NtReadStampsTheVersion) {
  tm_.txStart(writer_);                       // rv = 0
  EXPECT_EQ(*tm_.txRead(writer_, 2), 0u);
  tm_.ntWrite(other_, 2, 2);                  // x2 := 2 at ts 1
  EXPECT_EQ(tm_.ntRead(other_, 1), 0u);       // raises pstamp(x1@0) to 1
  tm_.txWrite(writer_, 1, 9);
  EXPECT_FALSE(tm_.txCommit(writer_));
  EXPECT_EQ(writer_.ssnAborts, 1u);
}

TEST_F(SsnReadOnlyRealTime, OverwrittenReadAboveTheFloorStillCommits) {
  // A read-only transaction whose version was overwritten by a FRESH
  // writer serializes before that writer — no real-time edge forces it
  // above the overwrite, so certification must not spuriously abort.
  tm_.txStart(other_);                        // read-only, rv = 0
  EXPECT_EQ(*tm_.txRead(other_, 1), 0u);
  tm_.txStart(writer_);                       // rv = 0
  tm_.txWrite(writer_, 1, 5);
  EXPECT_TRUE(tm_.txCommit(writer_));         // seals sstamp(x1@0) = 1
  EXPECT_TRUE(tm_.txCommit(other_));          // sstamp 1 > rv 0: fits
  EXPECT_EQ(other_.ssnAborts, 0u);
}

// ------------------------------------------------------ runtime adapter

class RuntimeTest : public ::testing::TestWithParam<TmKind> {};

TEST_P(RuntimeTest, TransactionalTransferPreservesTotal) {
  const TmKind kind = GetParam();
  NativeMemory mem(runtimeMemoryWords(kind, kVars));
  auto tm = makeNativeRuntime(kind, mem, kVars, 2);
  tm->ntWrite(0, 0, 100);
  for (int i = 0; i < 10; ++i) {
    tm->transaction(0, [&](TxContext& tx) {
      const Word a = tx.read(0);
      const Word b = tx.read(1);
      tx.write(0, a - 7);
      tx.write(1, b + 7);
    });
  }
  EXPECT_EQ(tm->ntRead(1, 0), 30u);
  EXPECT_EQ(tm->ntRead(1, 1), 70u);
}

TEST_P(RuntimeTest, UserAbortRollsBackAndDoesNotRetry) {
  const TmKind kind = GetParam();
  NativeMemory mem(runtimeMemoryWords(kind, kVars));
  auto tm = makeNativeRuntime(kind, mem, kVars, 1);
  int attempts = 0;
  const bool committed = tm->transaction(0, [&](TxContext& tx) {
    ++attempts;
    tx.write(0, 99);
    tx.abort();
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(tm->ntRead(0, 0), 0u);
}

TEST_P(RuntimeTest, InstrumentationFlagsMatchTheDesign) {
  const TmKind kind = GetParam();
  NativeMemory mem(runtimeMemoryWords(kind, kVars));
  auto tm = makeNativeRuntime(kind, mem, kVars, 1);
  switch (kind) {
    case TmKind::kGlobalLock:
    case TmKind::kTl2Weak:
      EXPECT_FALSE(tm->instrumentsNtReads());
      EXPECT_FALSE(tm->instrumentsNtWrites());
      break;
    case TmKind::kWriteAsTx:
    case TmKind::kVersionedWrite:
      EXPECT_FALSE(tm->instrumentsNtReads());
      EXPECT_TRUE(tm->instrumentsNtWrites());
      break;
    case TmKind::kStrongAtomicity:
    case TmKind::kSnapshotIsolation:
    case TmKind::kSiSsn:
      EXPECT_TRUE(tm->instrumentsNtReads());
      EXPECT_TRUE(tm->instrumentsNtWrites());
      break;
  }
  EXPECT_STREQ(tm->name(), tmKindName(kind));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RuntimeTest,
                         ::testing::ValuesIn(allTmKinds()),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// -------------------------------------------- version-chain depth (zipf)

std::uint64_t counter(const TmRuntime& rt, const char* name) {
  for (const TmRuntime::Counter& c : rt.telemetry()) {
    if (std::string(c.name) == name) return c.value;
  }
  return 0;
}

/// Deterministic interleaved driver: one OS thread drives two ProcessIds,
/// so an outer snapshot transaction on pid 0 observes exactly the nested
/// commits pid 1 makes between its reads — no scheduler involved.  Returns
/// (chain_reads, chain_steps) after the outer transaction re-reads the hot
/// key through the version chain the nested writers grew on top of it.
std::pair<std::uint64_t, std::uint64_t> chainDepthUnder(double theta,
                                                        TmKind kind) {
  constexpr std::size_t kN = 8;
  constexpr int kNestedWrites = 12;
  NativeMemory mem(runtimeMemoryWords(kind, kN));
  auto tm = makeNativeRuntime(kind, mem, kN, 2);
  const Zipfian zipf(kN, theta);
  int outerRuns = 0;
  tm->transaction(0, [&](TxContext& tx) {
    // Read-only SI transactions cannot conflict-abort here (the ring is
    // deep enough that the snapshot never goes "too old"); the guard
    // documents that the nested writes run exactly once.
    EXPECT_EQ(++outerRuns, 1);
    (void)tx.read(0);  // pin the snapshot's view of the hot key
    Rng rng(1234);
    for (int i = 0; i < kNestedWrites; ++i) {
      const auto x = static_cast<ObjectId>(zipf.next(rng));
      tm->transaction(1, [&](TxContext& inner) {
        inner.write(x, static_cast<Word>(i) + 100);
      });
    }
    // The re-read must walk past every nested version of the hot key that
    // is newer than this snapshot.
    (void)tx.read(0);
  });
  return {counter(*tm, "chain_reads"), counter(*tm, "chain_steps")};
}

class MvccChainDepth : public ::testing::TestWithParam<TmKind> {};

TEST_P(MvccChainDepth, ZipfianHotKeysGrowChainsPastOne) {
  const auto [reads, steps] = chainDepthUnder(0.9, GetParam());
  ASSERT_GT(reads, 0u);
  // The satellite regression: under theta >= 0.9 the hot key accumulates
  // versions, so the average chain walk exceeds one slot per read.
  EXPECT_GT(static_cast<double>(steps) / static_cast<double>(reads), 1.0);
}

TEST_P(MvccChainDepth, SkewWalksDeeperChainsThanUniform) {
  const auto [ur, us] = chainDepthUnder(0.0, GetParam());
  const auto [zr, zs] = chainDepthUnder(0.99, GetParam());
  ASSERT_GT(ur, 0u);
  ASSERT_GT(zr, 0u);
  // Same driver, same seed: skewed draws pile versions onto the key the
  // snapshot re-reads, uniform draws scatter them across the ring.
  EXPECT_GT(zs, us);
}

INSTANTIATE_TEST_SUITE_P(MvccKinds, MvccChainDepth,
                         ::testing::Values(TmKind::kSnapshotIsolation,
                                           TmKind::kSiSsn),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ------------------------------------------------ commit-stamp ceiling

/// The version clock lives at word 2n of the MVCC layout (see
/// mvcc_store.hpp); poking it simulates a lifetime of commits without
/// counting there.
template <class Tm>
void pokeClock(NativeMemory& mem, std::size_t numVars, Word value) {
  mem.store(0, static_cast<Addr>(2 * numVars), value);
}

TEST(MvccClockCeiling, NearCeilingStampsStillCommitAndRead) {
  NativeMemory mem(SiTm<NativeMemory>::memoryWords(kVars));
  SiTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  pokeClock<SiTm<NativeMemory>>(mem, kVars, SiTm<NativeMemory>::kClockCeiling - 8);
  tm.txStart(t);
  tm.txWrite(t, 1, 77);
  EXPECT_TRUE(tm.txCommit(t));
  tm.txStart(t);
  EXPECT_EQ(*tm.txRead(t, 1), 77u);  // (ts << 1) packing survives
  EXPECT_TRUE(tm.txCommit(t));
  EXPECT_EQ(tm.ntRead(t, 1), 77u);
}

TEST(MvccClockCeiling, SsnWriteSkewVerdictUnchangedNearCeiling) {
  // The write-skew exclusion window must behave identically whether the
  // clock is fresh or one lifetime of commits old — pstamp/sstamp
  // arithmetic has no wraparound slack below the ceiling.
  auto runSkew = [](Word clockBase) {
    NativeMemory mem(SiSsnTm<NativeMemory>::memoryWords(kVars));
    SiSsnTm<NativeMemory> tm(mem, kVars);
    if (clockBase != 0) pokeClock<SiSsnTm<NativeMemory>>(mem, kVars, clockBase);
    auto a = tm.makeThread(0);
    auto b = tm.makeThread(1);
    tm.txStart(a);
    tm.txStart(b);
    (void)*tm.txRead(a, 0);
    (void)*tm.txRead(b, 1);
    tm.txWrite(a, 1, 1);
    tm.txWrite(b, 0, 1);
    const bool aOk = tm.txCommit(a);
    const bool bOk = tm.txCommit(b);
    return std::make_pair(aOk, bOk);
  };
  const auto fresh = runSkew(0);
  const auto aged = runSkew(SiSsnTm<NativeMemory>::kClockCeiling - 100);
  EXPECT_EQ(fresh, aged);
  EXPECT_TRUE(fresh.first);
  EXPECT_FALSE(fresh.second);  // SSN closes the skew either way
}

TEST(MvccClockCeiling, SsnStampSitesAdvanceCleanlyNearCeiling) {
  // Every pstamp-advance and sstamp-seal site (txCommit, commitReadOnly,
  // ntRead, ntWrite) runs its floor/ceiling guard; one lifetime of
  // commits below the ceiling must pass all of them.
  NativeMemory mem(SiSsnTm<NativeMemory>::memoryWords(kVars));
  SiSsnTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  pokeClock<SiSsnTm<NativeMemory>>(mem, kVars,
                                   SiSsnTm<NativeMemory>::kClockCeiling - 16);
  tm.txStart(t);  // read-write commit: seals sstamps, raises pstamps
  (void)*tm.txRead(t, 0);
  tm.txWrite(t, 1, 5);
  EXPECT_TRUE(tm.txCommit(t));
  tm.txStart(t);  // read-only commit: pstamp raise via the clock
  EXPECT_EQ(*tm.txRead(t, 1), 5u);
  EXPECT_TRUE(tm.txCommit(t));
  EXPECT_EQ(tm.ntRead(t, 1), 5u);  // nt read: pstamp raise
  tm.ntWrite(t, 0, 9);             // nt write: sstamp seal
  EXPECT_EQ(tm.ntRead(t, 0), 9u);
}

TEST(MvccClockCeilingDeathTest, CorruptPstampIsConvictedOnTxAdvance) {
  // A pstamp at the ceiling cannot come from the guarded clock — it means
  // corruption; the advance site (txCommit's read-stamp raise) must
  // convict instead of propagating it into SSN verdicts.
  NativeMemory mem(SiSsnTm<NativeMemory>::memoryWords(kVars));
  SiSsnTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  // Initial version's pstamp of var 0 (layout: word 2n+2+2x).
  mem.store(0, static_cast<Addr>(2 * kVars + 2),
            SiSsnTm<NativeMemory>::kClockCeiling);
  tm.txStart(t);
  (void)*tm.txRead(t, 0);
  tm.txWrite(t, 1, 1);
  EXPECT_DEATH((void)tm.txCommit(t), "check failed");
}

TEST(MvccClockCeilingDeathTest, CorruptPstampIsConvictedOnNtRead) {
  NativeMemory mem(SiSsnTm<NativeMemory>::memoryWords(kVars));
  SiSsnTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  mem.store(0, static_cast<Addr>(2 * kVars + 2),
            SiSsnTm<NativeMemory>::kClockCeiling);
  EXPECT_DEATH((void)tm.ntRead(t, 0), "check failed");
}

TEST(MvccClockCeilingDeathTest, CommitAtCeilingIsConvictedSi) {
  NativeMemory mem(SiTm<NativeMemory>::memoryWords(kVars));
  SiTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  pokeClock<SiTm<NativeMemory>>(mem, kVars,
                                SiTm<NativeMemory>::kClockCeiling - 1);
  tm.txStart(t);
  tm.txWrite(t, 0, 1);
  EXPECT_DEATH((void)tm.txCommit(t), "check failed");
}

TEST(MvccClockCeilingDeathTest, CommitAtCeilingIsConvictedSsn) {
  NativeMemory mem(SiSsnTm<NativeMemory>::memoryWords(kVars));
  SiSsnTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  pokeClock<SiSsnTm<NativeMemory>>(mem, kVars,
                                   SiSsnTm<NativeMemory>::kClockCeiling - 1);
  tm.txStart(t);
  tm.txWrite(t, 0, 1);
  EXPECT_DEATH((void)tm.txCommit(t), "check failed");
}

TEST(MvccClockCeilingDeathTest, NtWriteAtCeilingIsConvicted) {
  NativeMemory mem(SiSsnTm<NativeMemory>::memoryWords(kVars));
  SiSsnTm<NativeMemory> tm(mem, kVars);
  auto t = tm.makeThread(0);
  pokeClock<SiSsnTm<NativeMemory>>(mem, kVars,
                                   SiSsnTm<NativeMemory>::kClockCeiling - 1);
  EXPECT_DEATH(tm.ntWrite(t, 0, 1), "check failed");
}

}  // namespace
}  // namespace jungle
