// Tests for sequential histories, visible(), and legality (§2), including
// the paper's Figure 3 sequential histories s1 and s2.
#include <gtest/gtest.h>

#include "history/sequential.hpp"
#include "spec/counter_spec.hpp"

namespace jungle {
namespace {

// Figure 3(b)/(c) sequential permutations of h, parameterized by v, v'.
History fig3s1(Word v, Word vprime) {
  HistoryBuilder b;
  b.write(1, 0, 1, 1);
  b.start(1, 2);
  b.write(1, 1, 1, 4);
  b.commit(1, 5);
  b.read(2, 1, 1, 3);
  b.read(2, 0, v, 6);
  b.start(3, 7);
  b.commit(3, 8);
  b.read(3, 0, vprime, 9);
  return b.build();
}

History fig3s2(Word v, Word vprime) {
  HistoryBuilder b;
  b.read(2, 0, v, 6);
  b.write(1, 0, 1, 1);
  b.start(1, 2);
  b.write(1, 1, 1, 4);
  b.commit(1, 5);
  b.read(2, 1, 1, 3);
  b.start(3, 7);
  b.commit(3, 8);
  b.read(3, 0, vprime, 9);
  return b.build();
}

// ------------------------------------------------------------- sequential

TEST(Sequential, S1AndS2AreSequential) {
  EXPECT_TRUE(isSequential(fig3s1(1, 1)));
  EXPECT_TRUE(isSequential(fig3s2(0, 1)));
}

TEST(Sequential, InterleavedTransactionIsNotSequential) {
  HistoryBuilder b;
  b.start(0).read(1, 0, 0).commit(0);  // nt op inside the transaction span
  EXPECT_FALSE(isSequential(b.build()));
  EXPECT_TRUE(isTransactionallySequential(b.build()));
}

TEST(Sequential, OverlappingTransactionsAreNeither) {
  HistoryBuilder b;
  b.start(0).start(1).commit(0).commit(1);
  EXPECT_FALSE(isSequential(b.build()));
  EXPECT_FALSE(isTransactionallySequential(b.build()));
}

TEST(Sequential, SequentialImpliesTransactionallySequential) {
  History s = fig3s1(1, 1);
  EXPECT_TRUE(isSequential(s));
  EXPECT_TRUE(isTransactionallySequential(s));
}

// ---------------------------------------------------------------- visible

TEST(Visible, CommittedTransactionsAreKept) {
  History s = fig3s1(1, 1);
  EXPECT_EQ(visible(s).size(), s.size());
}

TEST(Visible, AbortedTransactionFollowedByAnythingIsDropped) {
  HistoryBuilder b;
  b.start(0, 1).write(0, 0, 5, 2).abort(0, 3);
  b.read(1, 0, 0, 4);  // follows the aborted transaction
  History v = visible(b.build());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].id, 4u);
}

TEST(Visible, TrailingAbortedTransactionIsKept) {
  HistoryBuilder b;
  b.read(1, 0, 0, 1);
  b.start(0, 2).write(0, 0, 5, 3).abort(0, 4);
  History v = visible(b.build());
  EXPECT_EQ(v.size(), 4u);
}

TEST(Visible, TrailingLiveTransactionIsKept) {
  HistoryBuilder b;
  b.start(0, 1).write(0, 0, 5, 2);
  History v = visible(b.build());
  EXPECT_EQ(v.size(), 2u);
}

TEST(Visible, LiveTransactionFollowedByNtOpIsDropped) {
  // In a transactionally sequential history an nt op can follow a live
  // transaction's instances; the transaction then becomes invisible.
  HistoryBuilder b;
  b.start(0, 1).write(0, 0, 5, 2);
  b.read(1, 0, 0, 3);
  History v = visible(b.build());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].id, 3u);
}

// ---------------------------------------------------------------- legality

TEST(Legality, S1LegalIffBothReadsReturnOne) {
  SpecMap specs;
  EXPECT_TRUE(isLegalHistory(fig3s1(1, 1), specs));
  EXPECT_FALSE(isLegalHistory(fig3s1(0, 1), specs));
  EXPECT_FALSE(isLegalHistory(fig3s1(1, 0), specs));
  EXPECT_FALSE(isLegalHistory(fig3s1(0, 0), specs));
}

TEST(Legality, S2LegalIffVZeroAndVPrimeOne) {
  SpecMap specs;
  EXPECT_TRUE(isLegalHistory(fig3s2(0, 1), specs));
  EXPECT_FALSE(isLegalHistory(fig3s2(1, 1), specs));
  EXPECT_FALSE(isLegalHistory(fig3s2(0, 0), specs));
}

TEST(Legality, EveryOperationLegalCatchesAbortedTransactionReads) {
  // An aborted transaction reading an inconsistent value is illegal even
  // though the plain history legality (which drops it) would pass.
  HistoryBuilder b;
  b.write(0, 0, 1, 1);                           // x := 1, nt
  b.start(1, 2).read(1, 0, 7, 3).abort(1, 4);    // aborted tx reads x = 7
  b.read(0, 0, 1, 5);
  History s = b.build();
  SpecMap specs;
  ASSERT_TRUE(isSequential(s));
  EXPECT_TRUE(isLegalHistory(visible(s), specs));  // abort is invisible…
  EXPECT_FALSE(everyOperationLegal(s, specs));     // …but prefix-checked
}

TEST(Legality, EveryOperationLegalAcceptsConsistentAbort) {
  HistoryBuilder b;
  b.write(0, 0, 1, 1);
  b.start(1, 2).read(1, 0, 1, 3).abort(1, 4);
  b.read(0, 0, 1, 5);
  SpecMap specs;
  EXPECT_TRUE(everyOperationLegal(b.build(), specs));
}

TEST(Legality, AbortedWritesAreInvisibleToLaterOps) {
  HistoryBuilder b;
  b.start(0, 1).write(0, 0, 9, 2).abort(0, 3);
  b.read(1, 0, 0, 4);  // must read the initial value, not 9
  SpecMap specs;
  EXPECT_TRUE(everyOperationLegal(b.build(), specs));

  HistoryBuilder bad;
  bad.start(0, 1).write(0, 0, 9, 2).abort(0, 3);
  bad.read(1, 0, 9, 4);
  EXPECT_FALSE(everyOperationLegal(bad.build(), specs));
}

TEST(Legality, LiveTransactionSeesItsOwnWrites) {
  HistoryBuilder b;
  b.start(0, 1).write(0, 0, 9, 2).read(0, 0, 9, 3);
  SpecMap specs;
  EXPECT_TRUE(everyOperationLegal(b.build(), specs));
}

TEST(Legality, RicherObjectsParticipate) {
  SpecMap specs;
  specs.assign(5, std::make_shared<CounterSpec>(0));
  HistoryBuilder b;
  b.cmd(0, 5, cmdCtrInc(2), 1);
  b.start(1, 2);
  b.cmd(1, 5, cmdCtrInc(3), 3);
  b.cmd(1, 5, cmdCtrRead(5), 4);
  b.commit(1, 5);
  EXPECT_TRUE(everyOperationLegal(b.build(), specs));
}

// ------------------------------------------------------------ respects

TEST(RespectsOrder, DetectsViolations) {
  History s = fig3s1(1, 1);
  EXPECT_TRUE(respectsOrder(s, {{1, 2}, {5, 7}, {1, 9}}));
  EXPECT_FALSE(respectsOrder(s, {{6, 3}}));  // 3 precedes 6 in s1
  // Pairs mentioning absent identifiers are vacuously satisfied.
  EXPECT_TRUE(respectsOrder(s, {{100, 200}}));
}

}  // namespace
}  // namespace jungle
