// Mechanical verification of the paper's theorems (§5) on the executable
// Figure 5 trace constructions.
#include <gtest/gtest.h>

#include "memmodel/models.hpp"
#include "theorems/figure5.hpp"
#include "sim/trace_history.hpp"

namespace jungle {
namespace {

using namespace jungle::theorems;

SpecMap kRegisters;

/// ∃ corresponding history ensuring opacity parametrized by m.
bool somePopaqueHistory(const Trace& r, const MemoryModel& m) {
  auto res = traceEnsuresParametrizedOpacity(r, m, kRegisters);
  EXPECT_FALSE(res.cappedOut);
  return res.satisfied;
}

std::vector<const MemoryModel*> identityModels() {
  // All models with identity τ (the theorem traces use plain commands).
  return {&scModel(),    &tsoModel(),  &psoModel(),     &rmoModel(),
          &alphaModel(), &ia32Model(), &idealizedModel()};
}

// ---------------------------------------------------- structural sanity

TEST(Figure5, AllTracesAreWellFormedAndMachineConsistent) {
  const std::vector<std::pair<const char*, Trace>> traces{
      {"lemma1-bad", lemma1BadTrace()},
      {"lemma1-good", lemma1GoodTrace()},
      {"thm1-case1", thm1Case1Trace()},
      {"thm1-case2", thm1Case2Trace()},
      {"thm1-case3", thm1Case3Trace()},
      {"thm1-case3-dep", thm1Case3DependentTrace()},
      {"thm1-case4", thm1Case4Trace()},
      {"thm2-store", thm2StoreBasedTrace()},
      {"thm2-cas", thm2CasBasedTrace()},
  };
  for (const auto& [name, r] : traces) {
    std::string why;
    EXPECT_TRUE(traceWellFormed(r, &why)) << name << ": " << why;
    EXPECT_TRUE(traceMachineConsistent(r, &why)) << name << ": " << why;
  }
}

// ------------------------------------------------------------- Lemma 1

TEST(Lemma1, MissingUpdateInstructionBreaksEveryModel) {
  const Trace bad = lemma1BadTrace();
  for (const MemoryModel* m : identityModels()) {
    EXPECT_FALSE(somePopaqueHistory(bad, *m)) << m->name();
  }
}

TEST(Lemma1, WithTheUpdateTheTraceIsExplainable) {
  const Trace good = lemma1GoodTrace();
  for (const MemoryModel* m : identityModels()) {
    EXPECT_TRUE(somePopaqueHistory(good, *m)) << m->name();
  }
}

// ------------------------------------------------------------ Theorem 1

TEST(Theorem1Case1, ReadReadRestrictiveModelsFail) {
  const Trace r = thm1Case1Trace();
  // M ∈ M^i_rr: SC, TSO, PSO (and IA-32).
  EXPECT_FALSE(somePopaqueHistory(r, scModel()));
  EXPECT_FALSE(somePopaqueHistory(r, tsoModel()));
  EXPECT_FALSE(somePopaqueHistory(r, psoModel()));
  EXPECT_FALSE(somePopaqueHistory(r, ia32Model()));
}

TEST(Theorem1Case1, ReadReorderingModelsExplainTheTrace) {
  const Trace r = thm1Case1Trace();
  // The trace's reads are independent: RMO (∈ M^d_rr only), Alpha and the
  // idealized model may reorder them.
  EXPECT_TRUE(somePopaqueHistory(r, rmoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, alphaModel()));
  EXPECT_TRUE(somePopaqueHistory(r, idealizedModel()));
}

TEST(Theorem1Case2, WriteReadRestrictiveModelsFail) {
  const Trace r = thm1Case2Trace();
  EXPECT_FALSE(somePopaqueHistory(r, scModel()));  // SC ∈ M_wr
}

TEST(Theorem1Case2, StoreBufferModelsExplainTheTrace) {
  const Trace r = thm1Case2Trace();
  // W→R relaxation suffices: TSO, PSO, RMO, Alpha, Idealized.
  EXPECT_TRUE(somePopaqueHistory(r, tsoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, psoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, rmoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, alphaModel()));
  EXPECT_TRUE(somePopaqueHistory(r, idealizedModel()));
}

TEST(Theorem1Case3, ReadWriteRestrictiveModelsFail) {
  const Trace r = thm1Case3Trace();
  // Independent read→write restriction: SC, TSO, PSO.
  EXPECT_FALSE(somePopaqueHistory(r, scModel()));
  EXPECT_FALSE(somePopaqueHistory(r, tsoModel()));
  EXPECT_FALSE(somePopaqueHistory(r, psoModel()));
}

TEST(Theorem1Case3, IndependentWritesEscapeRmoAndAlpha) {
  const Trace r = thm1Case3Trace();
  EXPECT_TRUE(somePopaqueHistory(r, rmoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, alphaModel()));
  EXPECT_TRUE(somePopaqueHistory(r, idealizedModel()));
}

TEST(Theorem1Case3, DependentVariantCatchesRmoAndAlpha) {
  const Trace r = thm1Case3DependentTrace();
  // RMO, Alpha ∈ M^d_rw: the data-dependent writes must stay ordered
  // after the read, so the construction defeats them too.
  EXPECT_FALSE(somePopaqueHistory(r, rmoModel()));
  EXPECT_FALSE(somePopaqueHistory(r, alphaModel()));
  // The idealized model is outside M_rw entirely.
  EXPECT_TRUE(somePopaqueHistory(r, idealizedModel()));
}

TEST(Theorem1Case4, WriteWriteRestrictiveModelsFail) {
  const Trace r = thm1Case4Trace();
  EXPECT_FALSE(somePopaqueHistory(r, scModel()));
  EXPECT_FALSE(somePopaqueHistory(r, tsoModel()));
}

TEST(Theorem1Case4, WriteReorderingModelsExplainTheTrace) {
  const Trace r = thm1Case4Trace();
  EXPECT_TRUE(somePopaqueHistory(r, psoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, rmoModel()));
  EXPECT_TRUE(somePopaqueHistory(r, alphaModel()));
  EXPECT_TRUE(somePopaqueHistory(r, idealizedModel()));
}

TEST(Theorem1, EveryRestrictiveModelFallsToSomeCase) {
  // The theorem's statement: for every M ∈ M_rr ∪ M_rw ∪ M_wr ∪ M_ww, some
  // adversarial trace defeats an uninstrumented TM.  Map each restrictive
  // model to its witnessing construction.
  struct Row {
    const MemoryModel* m;
    Trace witness;
  };
  const std::vector<Row> rows{
      {&scModel(), thm1Case1Trace()},
      {&tsoModel(), thm1Case1Trace()},
      {&psoModel(), thm1Case1Trace()},
      {&ia32Model(), thm1Case1Trace()},
      {&rmoModel(), thm1Case3DependentTrace()},
      {&alphaModel(), thm1Case3DependentTrace()},
  };
  for (const Row& row : rows) {
    ASSERT_TRUE(row.m->classification().restrictive()) << row.m->name();
    EXPECT_FALSE(somePopaqueHistory(row.witness, *row.m)) << row.m->name();
  }
  // And the hypothesis matters: the idealized model is non-restrictive and
  // explains every Theorem 1 trace.
  ASSERT_FALSE(idealizedModel().classification().restrictive());
  for (const Trace& r : {thm1Case1Trace(), thm1Case2Trace(),
                         thm1Case3Trace(), thm1Case4Trace()}) {
    EXPECT_TRUE(somePopaqueHistory(r, idealizedModel()));
  }
}

// ------------------------------------------------------------ Theorem 2

TEST(Theorem2, StoreBasedWriteBackFailsEveryModel) {
  const Trace r = thm2StoreBasedTrace();
  for (const MemoryModel* m : identityModels()) {
    EXPECT_FALSE(somePopaqueHistory(r, *m)) << m->name();
  }
}

TEST(Theorem2, CasBasedWriteBackIsExplainableEverywhere) {
  const Trace r = thm2CasBasedTrace();
  for (const MemoryModel* m : identityModels()) {
    EXPECT_TRUE(somePopaqueHistory(r, *m)) << m->name();
  }
}

}  // namespace
}  // namespace jungle
