// White-box tests for the checker's machinery: unit decomposition,
// constraint lifting, cycle detection, serialization-order enumeration,
// and the budget/memoization plumbing.
#include <gtest/gtest.h>

#include "memmodel/models.hpp"
#include "opacity/legal_search.hpp"
#include "opacity/popacity.hpp"
#include "opacity/unit_graph.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

History twoTxOneNt() {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);   // T0
  b.read(2, 0, 1);                        // nt
  b.start(1).read(1, 0, 1).commit(1);     // T1
  return b.build();
}

// ------------------------------------------------------------------ units

TEST(UnitGraph, DecomposesTransactionsAndSingletons) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  ASSERT_EQ(g.unitCount(), 3u);
  EXPECT_EQ(g.txUnits().size(), 2u);
  // Transaction units carry all their positions.
  EXPECT_EQ(g.unit(g.txUnits()[0]).positions.size(), 3u);
  // The nt op is a singleton.
  std::size_t ntUnit = g.unitOf(h.positionOf(4));
  EXPECT_FALSE(g.unit(ntUnit).isTx);
  EXPECT_EQ(g.unit(ntUnit).positions.size(), 1u);
}

TEST(UnitGraph, LiftsRealTimeEdges) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  const std::size_t t0 = g.txUnits()[0];
  const std::size_t t1 = g.txUnits()[1];
  // T0 completed before T1 started: edge T0 → T1.
  EXPECT_TRUE(g.preds(t1).test(t0));
  EXPECT_FALSE(g.preds(t0).test(t1));
}

TEST(UnitGraph, CycleDetection) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  EXPECT_FALSE(g.hasCycle());
  const std::size_t t0 = g.txUnits()[0];
  const std::size_t t1 = g.txUnits()[1];
  g.addEdge(t1, t0);  // close the loop
  EXPECT_TRUE(g.hasCycle());
}

TEST(UnitGraph, SelfEdgesAreIgnored) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  g.addEdge(0, 0);
  EXPECT_FALSE(g.hasCycle());
}

TEST(UnitGraph, TxOrderEnumerationRespectsEdges) {
  // Three transactions: T0 ≺ T2 in real time; T1 overlaps both.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1);
  b.start(1);  // T1 opens before T0 completes: overlaps it
  b.commit(0);
  b.start(2).read(2, 0, 1).commit(2);
  b.read(1, 0, 1).commit(1);
  History h = b.build();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  int count = 0;
  forEachTxOrder(g, [&](const std::vector<std::size_t>& order) {
    EXPECT_EQ(order.size(), 3u);
    // T0's unit must precede T2's unit in every order.
    std::size_t pos0 = 99, pos2 = 99;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == g.txUnits()[0]) pos0 = i;
      if (order[i] == g.txUnits()[2]) pos2 = i;
    }
    EXPECT_LT(pos0, pos2);
    ++count;
    return false;
  });
  // Total orders of {T0, T1, T2} with T0 < T2: 3 of the 6 permutations.
  EXPECT_EQ(count, 3);
}

TEST(UnitGraph, EarlyExitStopsEnumeration) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  int count = 0;
  const bool stopped = forEachTxOrder(g, [&](const auto&) {
    ++count;
    return true;
  });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 1);
}

// ------------------------------------------------------------- search

TEST(LegalSearch, FindsTheObviousOrder) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  g.addViewEdges(requiredViewPairs(scModel(), h, a));
  auto out = findLegalOrder(g, kRegisters);
  ASSERT_TRUE(out.found);
  History s = sequentialHistoryFromOrder(g, out.order);
  EXPECT_EQ(s.size(), h.size());
}

TEST(LegalSearch, WitnessOrderIsConsistentWithPreds) {
  History h = twoTxOneNt();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  auto out = findLegalOrder(g, kRegisters);
  ASSERT_TRUE(out.found);
  // Every unit appears once, after all its predecessors.
  UnitSet seen;
  for (std::size_t u : out.order) {
    EXPECT_FALSE(seen.test(u));
    EXPECT_TRUE(seen.contains(g.preds(u)));
    seen.set(u);
  }
  EXPECT_EQ(seen.count(), g.unitCount());
}

TEST(LegalSearch, BudgetExhaustionIsReported) {
  HistoryBuilder b;
  for (int i = 0; i < 10; ++i) b.read(static_cast<ProcessId>(i % 3),
                                      static_cast<ObjectId>(i % 2), 0);
  History h = b.build();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  SearchLimits limits;
  limits.maxExpansions = 2;
  auto out = findLegalOrder(g, kRegisters, limits);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.exhaustedBudget);
}

TEST(LegalSearch, MemoOffMatchesMemoOn) {
  // Differential: the ablation switch must not change verdicts.
  for (Word v = 0; v <= 1; ++v) {
    for (Word w = 0; w <= 1; ++w) {
      HistoryBuilder b;
      b.start(0).write(0, 0, 1).write(0, 1, 1).commit(0);
      b.read(1, 0, v);
      b.read(1, 1, w);
      History h = b.build();
      SearchLimits memoOff;
      memoOff.useMemo = false;
      const bool with =
          checkParametrizedOpacity(h, scModel(), kRegisters).satisfied;
      const bool without =
          checkParametrizedOpacity(h, scModel(), kRegisters, memoOff)
              .satisfied;
      EXPECT_EQ(with, without) << v << "," << w;
    }
  }
}

TEST(LegalSearch, AbortedUnitEffectsAreInvisible) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 9).abort(0);
  b.read(1, 0, 0);
  History h = b.build();
  HistoryAnalysis a(h);
  UnitGraph g(h, a);
  auto out = findLegalOrder(g, kRegisters);
  EXPECT_TRUE(out.found);  // the read of 0 is fine after the aborted tx
}

TEST(UnitGraph, RejectsIllFormedHistories) {
  HistoryBuilder b;
  b.commit(0);
  History h = b.build();
  HistoryAnalysis a(h);
  EXPECT_DEATH({ UnitGraph g(h, a); }, "ill-formed");
}

TEST(CheckerApi, WitnessAbsentOnViolation) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).read(0, 0, 2).commit(0);
  CheckResult r = checkOpacity(b.build(), kRegisters);
  EXPECT_FALSE(r.satisfied);
  EXPECT_FALSE(r.witness.has_value());
}


TEST(Explain, ViolationCarriesAnExplanation) {
  // Fig 1's (1, 0) under SC: the read of y = 0 can never become legal once
  // the read of x = 1 forces the transaction first.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).write(0, 1, 1).commit(0);
  b.read(1, 0, 1);
  b.read(1, 1, 0);
  CheckResult r =
      checkParametrizedOpacity(b.build(), scModel(), kRegisters);
  ASSERT_FALSE(r.satisfied);
  EXPECT_FALSE(r.explanation.empty());
  EXPECT_NE(r.explanation.find("dead end"), std::string::npos);
  EXPECT_NE(r.explanation.find("illegal"), std::string::npos);
}

TEST(Explain, SuccessHasNoExplanation) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  CheckResult r = checkOpacity(b.build(), kRegisters);
  EXPECT_TRUE(r.satisfied);
  EXPECT_TRUE(r.explanation.empty());
}

TEST(Explain, CyclicConstraintsExplainedWithoutSearch) {
  // Purely non-transactional SC-impossible history: the view constraints
  // alone are contradictory only through legality, so the explanation is a
  // dead end; but an outright ≺h ∪ v cycle reports the generic message.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).read(1, 0, 0).commit(1);  // real-time forces T0 ≺ T1
  CheckResult r = checkOpacity(b.build(), kRegisters);
  ASSERT_FALSE(r.satisfied);
  EXPECT_FALSE(r.explanation.empty());
}

}  // namespace
}  // namespace jungle
