// Conformance of the live TM implementations with their theorems: traces
// recorded from deterministic scripts and randomized concurrent stress are
// checked against the parametrized-opacity / SGLA decision procedures.
//
//   Theorem 3: GlobalLockTm  → parametrized opacity for the idealized model
//   Theorem 4: WriteAsTxTm   → parametrized opacity for M ∉ M_rr (Alpha)
//   Theorem 5: VersionedWriteTm → parametrized opacity for M ∉ M_rr ∪ M_wr
//   Theorem 7: GlobalLockTm  → SGLA for EVERY memory model
//   §6.1:      StrongAtomicityTm → parametrized opacity for SC
//   Baseline:  Tl2Tm (weak) → opaque when purely transactional; violated
//              by racy non-transactional writes.
#include <gtest/gtest.h>

#include "memmodel/models.hpp"
#include "opacity/sgla.hpp"
#include "sim/memory_policy.hpp"
#include "theorems/conformance.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/tl2_tm.hpp"
#include "tm/versioned_write_tm.hpp"

namespace jungle {
namespace {

using theorems::checkTracePopacity;
using theorems::checkTraceSgla;
using theorems::runStressWorkload;
using theorems::StressOptions;

SpecMap kRegisters;

Trace recordStress(TmKind kind, const StressOptions& opts) {
  RecordingMemory mem(runtimeMemoryWords(kind, opts.numVars));
  auto tm = makeRecordingRuntime(kind, mem, opts.numVars, opts.numProcs);
  return runStressWorkload(*tm, mem, opts);
}

// ---------------------------------------------------------- stress-based

struct StressCase {
  TmKind kind;
  const MemoryModel* model;
};

class StressConformanceTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressConformanceTest, RandomTracesAdmitAnOpaqueHistory) {
  const auto& [kind, model] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    StressOptions opts;
    opts.seed = seed;
    opts.numProcs = 3;
    opts.numVars = 3;
    opts.actionsPerProc = 3;
    Trace r = recordStress(kind, opts);
    ASSERT_TRUE(traceWellFormed(r));
    auto res = checkTracePopacity(r, *model, kRegisters);
    EXPECT_FALSE(res.inconclusive) << "seed " << seed;
    EXPECT_TRUE(res.ok) << tmKindName(kind) << " vs " << model->name()
                        << " seed " << seed << "\ncanonical:\n"
                        << res.canonical.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    TheoremMatrix, StressConformanceTest,
    ::testing::Values(
        // Theorem 3 / 7 object.
        StressCase{TmKind::kGlobalLock, &idealizedModel()},
        // Theorem 4: M ∉ M_rr.
        StressCase{TmKind::kWriteAsTx, &alphaModel()},
        StressCase{TmKind::kWriteAsTx, &idealizedModel()},
        // Theorem 5: M ∉ M_rr ∪ M_wr.
        StressCase{TmKind::kVersionedWrite, &alphaModel()},
        StressCase{TmKind::kVersionedWrite, &idealizedModel()},
        // RMO ∈ M^d_rr, but the stress workload issues only *independent*
        // plain reads, so the dd-restriction never binds (§5.2's point:
        // only dependence-carrying reads need the volatile treatment).
        StressCase{TmKind::kVersionedWrite, &rmoModel()},
        // §6.1: strong atomicity = opacity parametrized by SC.  SC-opaque
        // traces are opaque under every weaker model as well.
        StressCase{TmKind::kStrongAtomicity, &scModel()},
        StressCase{TmKind::kStrongAtomicity, &tsoModel()},
        StressCase{TmKind::kStrongAtomicity, &rmoModel()}),
    [](const auto& info) {
      std::string n = std::string(tmKindName(info.param.kind)) + "_" +
                      info.param.model->name();
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(StressWidth, FourProcessTracesStillConform) {
  // A wider interleaving surface (4 processes) for the two key theorems.
  StressOptions opts;
  opts.numProcs = 4;
  opts.numVars = 3;
  opts.actionsPerProc = 2;
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    opts.seed = seed;
    Trace glock = recordStress(TmKind::kGlobalLock, opts);
    EXPECT_TRUE(checkTracePopacity(glock, idealizedModel(), kRegisters).ok)
        << "seed " << seed;
    Trace vw = recordStress(TmKind::kVersionedWrite, opts);
    EXPECT_TRUE(checkTracePopacity(vw, alphaModel(), kRegisters).ok)
        << "seed " << seed;
  }
}

TEST(Theorem7, GlobalLockStressTracesAreSglaForEveryModel) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    StressOptions opts;
    opts.seed = seed;
    opts.numProcs = 3;
    opts.numVars = 3;
    opts.actionsPerProc = 3;
    Trace r = recordStress(TmKind::kGlobalLock, opts);
    for (const MemoryModel* m :
         std::vector<const MemoryModel*>{&scModel(), &tsoModel(),
                                         &rmoModel(), &alphaModel(),
                                         &idealizedModel()}) {
      auto res = checkTraceSgla(r, *m, kRegisters);
      EXPECT_TRUE(res.ok) << m->name() << " seed " << seed;
    }
  }
}

TEST(Baseline, Tl2PurelyTransactionalStressIsOpaque) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    StressOptions opts;
    opts.seed = seed;
    opts.pctTx = 100;  // no non-transactional operations
    opts.numProcs = 3;
    opts.numVars = 3;
    opts.actionsPerProc = 3;
    Trace r = recordStress(TmKind::kTl2Weak, opts);
    auto res = checkTracePopacity(r, scModel(), kRegisters);
    EXPECT_TRUE(res.ok) << "seed " << seed;
  }
}

// ------------------------------------------------------- scripted races

TEST(Baseline, Tl2LostUpdateViolatesEveryParametrizedOpacity) {
  // Deterministic schedule: a plain write races a transaction and is lost.
  // No corresponding history of the recorded trace is parametrized-opaque
  // under ANY model — uninstrumented plain accesses break the TL2 design.
  constexpr std::size_t kVars = 2;
  RecordingMemory mem(Tl2Tm<RecordingMemory>::memoryWords(kVars));
  Tl2Tm<RecordingMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  ASSERT_EQ(tm.txRead(t0, 0).value_or(99), 0u);
  tm.ntWrite(t1, 0, 5);  // plain store: invisible to validation
  tm.txWrite(t0, 0, 1);
  ASSERT_TRUE(tm.txCommit(t0));
  ASSERT_EQ(tm.ntRead(t1, 0), 1u);  // the 5 was lost

  Trace r = mem.trace();
  for (const MemoryModel* m :
       std::vector<const MemoryModel*>{&scModel(), &tsoModel(), &rmoModel(),
                                       &alphaModel(), &idealizedModel()}) {
    auto res = checkTracePopacity(r, *m, kRegisters);
    EXPECT_FALSE(res.ok) << m->name();
    EXPECT_FALSE(res.inconclusive) << m->name();
  }
}

TEST(StrongAtomicity, SameScheduleStaysOpaque) {
  constexpr std::size_t kVars = 2;
  RecordingMemory mem(StrongAtomicityTm<RecordingMemory>::memoryWords(kVars));
  StrongAtomicityTm<RecordingMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  ASSERT_EQ(tm.txRead(t0, 0).value_or(99), 0u);
  tm.ntWrite(t1, 0, 5);  // instrumented: bumps the record
  tm.txWrite(t0, 0, 1);
  ASSERT_FALSE(tm.txCommit(t0));  // detected; transaction aborts
  ASSERT_EQ(tm.ntRead(t1, 0), 5u);

  Trace r = mem.trace();
  auto res = checkTracePopacity(r, scModel(), kRegisters);
  EXPECT_TRUE(res.ok) << res.canonical.toString();
}

TEST(Theorem5, RacyWriteAgainstCommitStaysExplainable) {
  // The VersionedWriteTm schedule where the commit CAS is beaten: the
  // recorded trace still has an Alpha-opaque corresponding history.
  constexpr std::size_t kVars = 2;
  RecordingMemory mem(VersionedWriteTm<RecordingMemory>::memoryWords(kVars));
  VersionedWriteTm<RecordingMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  tm.txWrite(t0, 0, 1);
  tm.ntWrite(t1, 0, 5);
  ASSERT_TRUE(tm.txCommit(t0));
  ASSERT_EQ(tm.ntRead(t1, 0), 5u);

  Trace r = mem.trace();
  EXPECT_TRUE(checkTracePopacity(r, alphaModel(), kRegisters).ok);
  EXPECT_TRUE(checkTracePopacity(r, idealizedModel(), kRegisters).ok);
}

TEST(Theorem5, FullWidthValuesStayExplainable) {
  // Regression for the old 32-bit payload cap: the two-word tag scheme
  // must preserve the Theorem 5 guarantees for values above 2^32,
  // including the A-B-A schedule the version tag exists to defeat.
  constexpr std::size_t kVars = 2;
  constexpr Word kBig = (Word{1} << 32) + 12345;
  RecordingMemory mem(VersionedWriteTm<RecordingMemory>::memoryWords(kVars));
  VersionedWriteTm<RecordingMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.ntWrite(t1, 0, kBig);
  tm.txStart(t0);
  tm.txWrite(t0, 0, kBig + 1);
  tm.ntWrite(t1, 0, kBig + 2);
  tm.ntWrite(t1, 0, kBig);  // restores the snapshot value, fresh tag
  ASSERT_TRUE(tm.txCommit(t0));
  ASSERT_EQ(tm.ntRead(t1, 0), kBig);  // the commit's tag-CAS lost

  Trace r = mem.trace();
  EXPECT_TRUE(checkTracePopacity(r, alphaModel(), kRegisters).ok);
  EXPECT_TRUE(checkTracePopacity(r, idealizedModel(), kRegisters).ok);
}

TEST(Conformance, AllTmsAcceptIdenticalSixtyFourBitWorkloads) {
  // Every kind must take the same full-width workload — versioned-write
  // used to reject values above 2^32 at the API boundary.
  constexpr Word kBig = ~Word{0} - 17;
  for (TmKind kind : allTmKinds()) {
    NativeMemory mem(runtimeMemoryWords(kind, 2));
    auto tm = makeNativeRuntime(kind, mem, 2, 2);
    tm->ntWrite(0, 0, kBig);
    EXPECT_EQ(tm->ntRead(1, 0), kBig) << tmKindName(kind);
    const bool ok =
        tm->transaction(0, [&](TxContext& tx) { tx.write(1, tx.read(0) + 1); });
    EXPECT_TRUE(ok) << tmKindName(kind);
    EXPECT_EQ(tm->ntRead(1, 1), kBig + 1) << tmKindName(kind);
  }
}

TEST(Theorem4, WriteAsTxHandlesWriteHeavyRaces) {
  StressOptions opts;
  opts.seed = 11;
  opts.numProcs = 3;
  opts.numVars = 2;
  opts.actionsPerProc = 3;
  opts.pctTx = 30;
  opts.pctWrite = 80;  // mostly plain writes — the instrumented path
  Trace r = recordStress(TmKind::kWriteAsTx, opts);
  EXPECT_TRUE(checkTracePopacity(r, alphaModel(), kRegisters).ok);
}

// -------------------------------------------------- recorded trace sanity

TEST(Recording, TracesAreWellFormedAndMachineConsistent) {
  StressOptions opts;
  opts.seed = 3;
  for (TmKind kind : allTmKinds()) {
    Trace r = recordStress(kind, opts);
    std::string why;
    EXPECT_TRUE(traceWellFormed(r, &why)) << tmKindName(kind) << ": " << why;
    EXPECT_TRUE(traceMachineConsistent(r, &why))
        << tmKindName(kind) << ": " << why;
  }
}

}  // namespace
}  // namespace jungle
