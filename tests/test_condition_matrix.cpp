// The machine-checked condition matrix (DESIGN.md §10): for each of the
// seven TM kinds, which of {opacity, popacity, SI, strict-ser} its traces
// satisfy, plus the deterministic litmus schedules that separate the MVCC
// family from the next-stronger condition:
//
//   si-mvcc → snapshot isolation only: the write-skew schedule commits on
//             both sides, and no serializable explanation exists, but the
//             interval-slack SI split accepts it.
//   si-ssn  → strict serializability: the same schedule's second committer
//             trips the SSN exclusion window and aborts.
//
// The single-version kinds keep their parametrized-opacity claims from
// test_tm_conformance.cpp; here every kind is driven through the one
// dispatching checker (checkTraceCondition) with its claimed condition.
#include <gtest/gtest.h>

#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "sim/memory_policy.hpp"
#include "theorems/conformance.hpp"
#include "tm/mvcc_store.hpp"

namespace jungle {
namespace {

using theorems::checkTraceCondition;
using theorems::runStressWorkload;
using theorems::StressOptions;

SpecMap kRegisters;

// ------------------------------------------------- separating schedules

/// Drives the classic write-skew schedule on an MVCC backend: T0 and T1
/// read {x, y} off the same (initial) snapshot, then T0 writes y while T1
/// writes x — disjoint write sets, so first-committer-wins lets both pass.
/// Returns the recorded trace and each transaction's commit verdict.
template <template <class> class Tm>
std::tuple<Trace, bool, bool> runWriteSkew() {
  constexpr std::size_t kVars = 2;
  RecordingMemory mem(Tm<RecordingMemory>::memoryWords(kVars));
  Tm<RecordingMemory> tm(mem, kVars);
  auto t0 = tm.makeThread(0);
  auto t1 = tm.makeThread(1);

  tm.txStart(t0);
  tm.txStart(t1);
  EXPECT_EQ(tm.txRead(t0, 0).value_or(99), 0u);
  EXPECT_EQ(tm.txRead(t0, 1).value_or(99), 0u);
  EXPECT_EQ(tm.txRead(t1, 0).value_or(99), 0u);
  EXPECT_EQ(tm.txRead(t1, 1).value_or(99), 0u);
  tm.txWrite(t0, 1, 1);  // T0: if x + y == 0 then y := 1
  tm.txWrite(t1, 0, 1);  // T1: if x + y == 0 then x := 1
  const bool c0 = tm.txCommit(t0);
  const bool c1 = tm.txCommit(t1);
  return {mem.trace(), c0, c1};
}

TEST(ConditionMatrix, SiTmAdmitsWriteSkewAndOnlySnapshotIsolationExplainsIt) {
  const auto [r, c0, c1] = runWriteSkew<SiTm>();
  ASSERT_TRUE(c0);
  ASSERT_TRUE(c1);  // snapshot isolation: disjoint write sets both commit

  const auto si = checkTraceCondition(r, ConditionKind::kSnapshotIsolation,
                                      scModel(), kRegisters);
  EXPECT_TRUE(si.ok) << si.canonical.toString();

  // ...but no corresponding history is strictly serializable, let alone
  // opaque: write skew is the separating litmus for the whole serializable
  // side of the spectrum.
  const auto strict = checkTraceCondition(
      r, ConditionKind::kStrictSerializability, scModel(), kRegisters);
  EXPECT_FALSE(strict.ok);
  EXPECT_FALSE(strict.inconclusive);
  const auto opa =
      checkTraceCondition(r, ConditionKind::kOpacity, scModel(), kRegisters);
  EXPECT_FALSE(opa.ok);
  EXPECT_FALSE(opa.inconclusive);
}

TEST(ConditionMatrix, SiSsnAbortsTheSecondWriteSkewCommitter) {
  const auto [r, c0, c1] = runWriteSkew<SiSsnTm>();
  EXPECT_TRUE(c0);
  EXPECT_FALSE(c1);  // eta <= pi: the SSN exclusion window closes

  // With the offender aborted the trace is strictly serializable (and a
  // fortiori snapshot-isolated).
  const auto strict = checkTraceCondition(
      r, ConditionKind::kStrictSerializability, scModel(), kRegisters);
  EXPECT_TRUE(strict.ok) << strict.canonical.toString();
  const auto si = checkTraceCondition(r, ConditionKind::kSnapshotIsolation,
                                      scModel(), kRegisters);
  EXPECT_TRUE(si.ok);
}

TEST(ConditionMatrix, BothMvccBackendsExcludeLostUpdate) {
  // Two concurrent read-modify-writes of the same variable: the second
  // committer must lose first-committer-wins under both backends.
  const auto drive = [](auto& tm, auto& t0, auto& t1) {
    tm.txStart(t0);
    tm.txStart(t1);
    EXPECT_EQ(tm.txRead(t0, 0).value_or(99), 0u);
    EXPECT_EQ(tm.txRead(t1, 0).value_or(99), 0u);
    tm.txWrite(t0, 0, 1);
    tm.txWrite(t1, 0, 2);
    EXPECT_TRUE(tm.txCommit(t0));
    EXPECT_FALSE(tm.txCommit(t1));
  };
  {
    RecordingMemory mem(SiTm<RecordingMemory>::memoryWords(1));
    SiTm<RecordingMemory> tm(mem, 1);
    auto t0 = tm.makeThread(0);
    auto t1 = tm.makeThread(1);
    drive(tm, t0, t1);
    const auto si = checkTraceCondition(
        mem.trace(), ConditionKind::kSnapshotIsolation, scModel(), kRegisters);
    EXPECT_TRUE(si.ok) << si.canonical.toString();
  }
  {
    RecordingMemory mem(SiSsnTm<RecordingMemory>::memoryWords(1));
    SiSsnTm<RecordingMemory> tm(mem, 1);
    auto t0 = tm.makeThread(0);
    auto t1 = tm.makeThread(1);
    drive(tm, t0, t1);
    const auto strict =
        checkTraceCondition(mem.trace(), ConditionKind::kStrictSerializability,
                            scModel(), kRegisters);
    EXPECT_TRUE(strict.ok) << strict.canonical.toString();
  }
}

// ------------------------------------------------- per-kind conformance

/// Every kind's claimed cell in the matrix — the same table as the fuzz
/// harness's tmClaims() and the monitor's monitorModelFor().
struct MatrixRow {
  TmKind kind;
  ConditionKind condition;
  const MemoryModel* model;  // consulted only for popacity
  bool pureTxOnly;
};

const std::vector<MatrixRow>& matrixRows() {
  static const std::vector<MatrixRow> rows{
      {TmKind::kGlobalLock, ConditionKind::kParametrizedOpacity,
       &idealizedModel(), false},
      {TmKind::kWriteAsTx, ConditionKind::kParametrizedOpacity, &alphaModel(),
       false},
      {TmKind::kVersionedWrite, ConditionKind::kParametrizedOpacity,
       &alphaModel(), false},
      {TmKind::kStrongAtomicity, ConditionKind::kParametrizedOpacity,
       &scModel(), false},
      {TmKind::kTl2Weak, ConditionKind::kParametrizedOpacity, &scModel(),
       true},
      {TmKind::kSnapshotIsolation, ConditionKind::kSnapshotIsolation,
       &scModel(), false},
      {TmKind::kSiSsn, ConditionKind::kStrictSerializability, &scModel(),
       false},
  };
  return rows;
}

TEST(ConditionMatrix, CoversEveryTmKindExactlyOnce) {
  ASSERT_EQ(matrixRows().size(), kTmKindCount);
  ASSERT_EQ(allTmKinds().size(), kTmKindCount);
  for (TmKind kind : allTmKinds()) {
    std::size_t hits = 0;
    for (const MatrixRow& row : matrixRows()) {
      if (row.kind == kind) ++hits;
    }
    EXPECT_EQ(hits, 1u) << tmKindName(kind);
  }
}

class MatrixConformanceTest : public ::testing::TestWithParam<MatrixRow> {};

TEST_P(MatrixConformanceTest, StressTracesSatisfyTheClaimedCondition) {
  const MatrixRow& row = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    StressOptions opts;
    opts.seed = seed;
    opts.numProcs = 3;
    opts.numVars = 3;
    opts.actionsPerProc = 3;
    if (row.pureTxOnly) opts.pctTx = 100;
    RecordingMemory mem(runtimeMemoryWords(row.kind, opts.numVars));
    auto tm = makeRecordingRuntime(row.kind, mem, opts.numVars, opts.numProcs);
    Trace r = runStressWorkload(*tm, mem, opts);
    ASSERT_TRUE(traceWellFormed(r));
    const auto res =
        checkTraceCondition(r, row.condition, *row.model, kRegisters);
    EXPECT_FALSE(res.inconclusive) << "seed " << seed;
    EXPECT_TRUE(res.ok) << tmKindName(row.kind) << " vs "
                        << conditionKindName(row.condition) << " seed " << seed
                        << "\ncanonical:\n"
                        << res.canonical.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MatrixConformanceTest,
                         ::testing::ValuesIn(matrixRows()),
                         [](const auto& info) {
                           std::string n =
                               std::string(tmKindName(info.param.kind)) + "_" +
                               conditionKindName(info.param.condition);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// The SI backend's traces additionally stay snapshot-isolated when its
// serializable sibling runs the identical workload, and si-ssn traces are
// in particular snapshot-isolated too (strict-ser sits above SI except for
// first-committer-wins, which the backend enforces natively).
TEST(ConditionMatrix, SiSsnStressTracesAreAlsoSnapshotIsolated) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    StressOptions opts;
    opts.seed = seed;
    opts.numProcs = 3;
    opts.numVars = 3;
    opts.actionsPerProc = 3;
    RecordingMemory mem(runtimeMemoryWords(TmKind::kSiSsn, opts.numVars));
    auto tm =
        makeRecordingRuntime(TmKind::kSiSsn, mem, opts.numVars, opts.numProcs);
    Trace r = runStressWorkload(*tm, mem, opts);
    const auto si = checkTraceCondition(r, ConditionKind::kSnapshotIsolation,
                                        scModel(), kRegisters);
    EXPECT_TRUE(si.ok) << "seed " << seed;
  }
}

// --------------------------------------------------------- telemetry

TEST(Telemetry, MvccRuntimesExposeChainAndCertificationCounters) {
  for (TmKind kind : {TmKind::kSnapshotIsolation, TmKind::kSiSsn}) {
    NativeMemory mem(runtimeMemoryWords(kind, 2));
    auto tm = makeNativeRuntime(kind, mem, 2, 2);
    ASSERT_TRUE(tm->transaction(
        0, [](TxContext& tx) { tx.write(0, tx.read(0) + 1); }));
    const auto counters = tm->telemetry();
    ASSERT_EQ(counters.size(), 5u) << tmKindName(kind);
    EXPECT_STREQ(counters[0].name, "fcw_aborts");
    EXPECT_STREQ(counters[3].name, "chain_reads");
    EXPECT_GE(counters[3].value, 1u);  // the read walked the chain
  }
  // Single-version kinds report no counters.
  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 2));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 2, 2);
  EXPECT_TRUE(tm->telemetry().empty());
}

}  // namespace
}  // namespace jungle
