// Soundness/completeness cross-check of the parametrized-opacity checker
// against a brute-force oracle built from the *reference* definitions
// (history/sequential.hpp): enumerate every permutation of τ(h) and test
// sequentiality, prefix-visible legality, ≺h, and the minimal view
// directly.  The two implementations share no search code, so agreement on
// randomized histories is strong evidence both read the definitions the
// same way.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "history/sequential.hpp"
#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"
#include "spec/counter_spec.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

/// Brute-force ∃s: permutation of τ(h), sequential, every operation legal,
/// respecting ≺h and the model's minimal view.  Equivalent to parametrized
/// opacity because the minimal view is shared by all processes and a single
/// witness then serves every process (DESIGN.md §5).
bool bruteForcePopacity(const History& h, const MemoryModel& m,
                        const SpecMap& specs) {
  const History ht = m.transform(h);
  HistoryAnalysis analysis(ht);
  if (!analysis.wellFormed()) return false;
  const auto rt = analysis.realTimePairs();
  const auto view = requiredViewPairs(m, ht, analysis);

  std::vector<std::size_t> perm(ht.size());
  std::iota(perm.begin(), perm.end(), 0);
  do {
    History s = ht.subsequence(perm);
    if (!isSequential(s)) continue;
    if (!respectsOrder(s, rt)) continue;
    if (!respectsOrder(s, view)) continue;
    if (!everyOperationLegal(s, specs)) continue;
    return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

/// Small random mixed history: up to `maxOps` operations over two
/// registers and three processes, with values in {0, 1} so that both
/// satisfiable and unsatisfiable instances occur frequently.
History randomHistory(std::uint64_t seed, std::size_t maxOps) {
  Rng rng(seed);
  HistoryBuilder b;
  std::vector<bool> inTx(3, false);
  const std::size_t n = 3 + rng.below(maxOps - 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = static_cast<ProcessId>(rng.below(3));
    const auto x = static_cast<ObjectId>(rng.below(2));
    const Word v = rng.below(2);
    switch (rng.below(6)) {
      case 0:
        if (!inTx[p]) {
          b.start(p);
          inTx[p] = true;
          break;
        }
        [[fallthrough]];
      case 1:
        if (inTx[p]) {
          rng.chance(3, 4) ? b.commit(p) : b.abort(p);
          inTx[p] = false;
          break;
        }
        [[fallthrough]];
      case 2:
      case 3:
        b.read(p, x, v);
        break;
      default:
        b.write(p, x, v);
        break;
    }
  }
  return b.build();
}

TEST(Oracle, AgreesOnThePaperFigures) {
  const std::vector<const MemoryModel*> models{
      &scModel(), &tsoModel(), &psoModel(), &rmoModel(), &alphaModel(),
      &junkScModel(), &idealizedModel()};
  std::vector<History> hs;
  for (Word a : {0, 1}) {
    for (Word c : {0, 1}) {
      hs.push_back(litmus::fig1History(a, c));
      hs.push_back(litmus::fig2bHistory(a, c));
      hs.push_back(litmus::storeBufferHistory(a, c));
    }
  }
  hs.push_back(litmus::fig3History(0, 1));
  hs.push_back(litmus::fig3History(1, 1));
  for (const History& h : hs) {
    for (const MemoryModel* m : models) {
      // Junk-SC's τ doubles writes; keep the factorial oracle tractable.
      if (m->transform(h).size() > 8) continue;
      EXPECT_EQ(bruteForcePopacity(h, *m, kRegisters),
                checkParametrizedOpacity(h, *m, kRegisters).satisfied)
          << m->name() << "\n"
          << h.toString();
    }
  }
}

class OracleFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleFuzzTest, CheckerMatchesBruteForceOnRandomHistories) {
  const int block = GetParam();
  const std::vector<const MemoryModel*> models{
      &scModel(), &tsoModel(), &rmoModel(), &alphaModel(),
      &idealizedModel()};
  int satisfiable = 0, unsatisfiable = 0;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t seed =
        static_cast<std::uint64_t>(block) * 1000 + static_cast<std::uint64_t>(i);
    History h = randomHistory(seed, 7);
    for (const MemoryModel* m : models) {
      const bool oracle = bruteForcePopacity(h, *m, kRegisters);
      const CheckResult res = checkParametrizedOpacity(h, *m, kRegisters);
      ASSERT_EQ(oracle, res.satisfied)
          << m->name() << " seed=" << seed << "\n"
          << h.toString();
      if (res.satisfied) {
        // The witness must itself pass the reference definitions.
        ASSERT_TRUE(res.witness.has_value());
        const History& s = *res.witness;
        HistoryAnalysis analysis(h);
        ASSERT_TRUE(isSequential(s));
        ASSERT_TRUE(everyOperationLegal(s, kRegisters));
        ASSERT_TRUE(respectsOrder(s, analysis.realTimePairs()));
        ASSERT_TRUE(respectsOrder(s, requiredViewPairs(*m, h, analysis)));
      }
      (oracle ? satisfiable : unsatisfiable) += 1;
    }
  }
  // The family must exercise both verdicts, or the fuzz proves nothing.
  EXPECT_GT(satisfiable, 0);
  EXPECT_GT(unsatisfiable, 0);
}

INSTANTIATE_TEST_SUITE_P(Blocks, OracleFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Oracle, AgreesOnCounterObjectHistories) {
  // The generic-specification path: object 0 is a counter; increments
  // commute, so more serializations are legal than with registers.
  SpecMap specs;
  specs.assign(0, std::make_shared<CounterSpec>(0));
  int satisfiable = 0, unsatisfiable = 0;
  for (std::uint64_t seed = 9000; seed < 9060; ++seed) {
    Rng rng(seed);
    HistoryBuilder b;
    Word total[2] = {0, 0};  // per-"phase" running totals, to vary reads
    for (int i = 0; i < 6; ++i) {
      const auto p = static_cast<ProcessId>(rng.below(2));
      if (rng.chance(1, 3)) {
        const Word v = 1 + rng.below(3);
        total[0] += v;
        b.cmd(p, 0, cmdCtrInc(v));
      } else {
        // Reads sometimes of the running total, sometimes off by one.
        const Word claim = rng.chance(2, 3) ? total[0] : total[0] + 1;
        b.cmd(p, 0, cmdCtrRead(claim));
      }
    }
    History h = b.build();
    for (const MemoryModel* m :
         std::vector<const MemoryModel*>{&scModel(), &rmoModel()}) {
      const bool oracle = bruteForcePopacity(h, *m, specs);
      const bool checker =
          checkParametrizedOpacity(h, *m, specs).satisfied;
      ASSERT_EQ(oracle, checker) << m->name() << " seed=" << seed << "\n"
                                 << h.toString();
      (oracle ? satisfiable : unsatisfiable) += 1;
    }
  }
  EXPECT_GT(satisfiable, 0);
  EXPECT_GT(unsatisfiable, 0);
}

TEST(Oracle, SglaIsWeakerOnRandomHistories) {
  // ∀h, M: parametrized opacity ⇒ SGLA (Theorem 6), fuzz edition.
  const std::vector<const MemoryModel*> models{&scModel(), &rmoModel(),
                                               &alphaModel()};
  int implications = 0;
  for (std::uint64_t seed = 7000; seed < 7120; ++seed) {
    History h = randomHistory(seed, 7);
    for (const MemoryModel* m : models) {
      if (checkParametrizedOpacity(h, *m, kRegisters).satisfied) {
        EXPECT_TRUE(checkSgla(h, *m, kRegisters).satisfied)
            << m->name() << " seed=" << seed << "\n"
            << h.toString();
        ++implications;
      }
    }
  }
  EXPECT_GT(implications, 30);
}

}  // namespace
}  // namespace jungle
