// Data-driven verification of the sample history corpus shipped in
// examples/histories/: each file parses, and its documented verdicts hold.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"
#include "spec/counter_spec.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle {
namespace {

History load(const std::string& name) {
  const std::string path = std::string(JUNGLE_HISTORIES_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto r = litmus::parseHistory(buf.str());
  EXPECT_TRUE(r) << name << ": " << r.error;
  return *r.history;
}

SpecMap kRegisters;

TEST(Corpus, Fig1Tear) {
  History h = load("fig1_tear.hist");
  EXPECT_FALSE(checkParametrizedOpacity(h, scModel(), kRegisters).satisfied);
  EXPECT_FALSE(checkParametrizedOpacity(h, tsoModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkParametrizedOpacity(h, rmoModel(), kRegisters).satisfied);
  EXPECT_TRUE(
      checkParametrizedOpacity(h, alphaModel(), kRegisters).satisfied);
}

TEST(Corpus, Fig3) {
  History h = load("fig3.hist");
  for (const MemoryModel* m : allModels()) {
    EXPECT_TRUE(checkParametrizedOpacity(h, *m, kRegisters).satisfied)
        << m->name();
  }
  HistoryAnalysis a(h);
  EXPECT_EQ(a.transactions().size(), 2u);
}

TEST(Corpus, AbortedObserver) {
  History h = load("aborted_observer.hist");
  for (const MemoryModel* m : allModels()) {
    EXPECT_FALSE(checkParametrizedOpacity(h, *m, kRegisters).satisfied)
        << m->name();
  }
  EXPECT_TRUE(checkStrictSerializability(h, kRegisters).satisfied);
}

TEST(Corpus, StoreBuffer) {
  History h = load("store_buffer.hist");
  EXPECT_FALSE(checkParametrizedOpacity(h, scModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkParametrizedOpacity(h, tsoModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkParametrizedOpacity(h, psoModel(), kRegisters).satisfied);
}

TEST(Corpus, SglaSplit) {
  History h = load("sgla_split.hist");
  for (const MemoryModel* m : allModels()) {
    if (m == &junkScModel()) continue;
    EXPECT_FALSE(checkParametrizedOpacity(h, *m, kRegisters).satisfied)
        << m->name();
  }
  // Junk-SC is the exception: the racy plain write opens a havoc window,
  // and a transaction reading a havocked register may return anything —
  // out-of-thin-air semantics subsume even this anomaly.
  EXPECT_TRUE(
      checkParametrizedOpacity(h, junkScModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkSgla(h, scModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkSgla(h, rmoModel(), kRegisters).satisfied);
}

TEST(Corpus, CounterNeedsItsSpec) {
  History h = load("counter.hist");
  // With the right sequential specification the history is opaque…
  SpecMap counterSpecs;
  counterSpecs.assign(0, std::make_shared<CounterSpec>(0));
  EXPECT_TRUE(checkOpacity(h, counterSpecs).satisfied);
  // …and a wrong final read is rejected.
  HistoryBuilder bad;
  for (const OpInstance& inst : h) {
    OpInstance copy = inst;
    if (copy.isCommand() && copy.cmd.kind == CmdKind::kCtrRead) {
      copy.cmd.value = 4;
    }
    bad.append(copy);
  }
  EXPECT_FALSE(checkOpacity(bad.build(), counterSpecs).satisfied);
  // With the default register specs the counter commands are illegal.
  EXPECT_FALSE(checkOpacity(h, kRegisters).satisfied);
}

TEST(Corpus, DependentMp) {
  History h = load("dependent_mp.hist");
  EXPECT_FALSE(checkParametrizedOpacity(h, scModel(), kRegisters).satisfied);
  EXPECT_FALSE(checkParametrizedOpacity(h, rmoModel(), kRegisters).satisfied);
  EXPECT_TRUE(
      checkParametrizedOpacity(h, alphaModel(), kRegisters).satisfied);
}

TEST(Corpus, EveryFileRoundTrips) {
  for (const char* name :
       {"fig1_tear.hist", "fig3.hist", "aborted_observer.hist",
        "store_buffer.hist", "sgla_split.hist", "counter.hist",
        "dependent_mp.hist"}) {
    History h = load(name);
    auto r = litmus::parseHistory(litmus::formatHistory(h));
    ASSERT_TRUE(r) << name;
    EXPECT_EQ(*r.history, h) << name;
  }
}

}  // namespace
}  // namespace jungle
