// Data-driven verification of the sample history corpus shipped in
// examples/histories/: each file parses, and its documented verdicts hold.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"
#include "spec/counter_spec.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle {
namespace {

History load(const std::string& name) {
  const std::string path = std::string(JUNGLE_HISTORIES_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto r = litmus::parseHistory(buf.str());
  EXPECT_TRUE(r) << name << ": " << r.error;
  return *r.history;
}

SpecMap kRegisters;

TEST(Corpus, Fig1Tear) {
  History h = load("fig1_tear.hist");
  EXPECT_FALSE(checkParametrizedOpacity(h, scModel(), kRegisters).satisfied);
  EXPECT_FALSE(checkParametrizedOpacity(h, tsoModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkParametrizedOpacity(h, rmoModel(), kRegisters).satisfied);
  EXPECT_TRUE(
      checkParametrizedOpacity(h, alphaModel(), kRegisters).satisfied);
}

TEST(Corpus, Fig3) {
  History h = load("fig3.hist");
  for (const MemoryModel* m : allModels()) {
    EXPECT_TRUE(checkParametrizedOpacity(h, *m, kRegisters).satisfied)
        << m->name();
  }
  HistoryAnalysis a(h);
  EXPECT_EQ(a.transactions().size(), 2u);
}

TEST(Corpus, AbortedObserver) {
  History h = load("aborted_observer.hist");
  for (const MemoryModel* m : allModels()) {
    EXPECT_FALSE(checkParametrizedOpacity(h, *m, kRegisters).satisfied)
        << m->name();
  }
  EXPECT_TRUE(checkStrictSerializability(h, kRegisters).satisfied);
}

TEST(Corpus, StoreBuffer) {
  History h = load("store_buffer.hist");
  EXPECT_FALSE(checkParametrizedOpacity(h, scModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkParametrizedOpacity(h, tsoModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkParametrizedOpacity(h, psoModel(), kRegisters).satisfied);
}

TEST(Corpus, SglaSplit) {
  History h = load("sgla_split.hist");
  for (const MemoryModel* m : allModels()) {
    if (m == &junkScModel()) continue;
    EXPECT_FALSE(checkParametrizedOpacity(h, *m, kRegisters).satisfied)
        << m->name();
  }
  // Junk-SC is the exception: the racy plain write opens a havoc window,
  // and a transaction reading a havocked register may return anything —
  // out-of-thin-air semantics subsume even this anomaly.
  EXPECT_TRUE(
      checkParametrizedOpacity(h, junkScModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkSgla(h, scModel(), kRegisters).satisfied);
  EXPECT_TRUE(checkSgla(h, rmoModel(), kRegisters).satisfied);
}

TEST(Corpus, CounterNeedsItsSpec) {
  History h = load("counter.hist");
  // With the right sequential specification the history is opaque…
  SpecMap counterSpecs;
  counterSpecs.assign(0, std::make_shared<CounterSpec>(0));
  EXPECT_TRUE(checkOpacity(h, counterSpecs).satisfied);
  // …and a wrong final read is rejected.
  HistoryBuilder bad;
  for (const OpInstance& inst : h) {
    OpInstance copy = inst;
    if (copy.isCommand() && copy.cmd.kind == CmdKind::kCtrRead) {
      copy.cmd.value = 4;
    }
    bad.append(copy);
  }
  EXPECT_FALSE(checkOpacity(bad.build(), counterSpecs).satisfied);
  // With the default register specs the counter commands are illegal.
  EXPECT_FALSE(checkOpacity(h, kRegisters).satisfied);
}

TEST(Corpus, DependentMp) {
  History h = load("dependent_mp.hist");
  EXPECT_FALSE(checkParametrizedOpacity(h, scModel(), kRegisters).satisfied);
  EXPECT_FALSE(checkParametrizedOpacity(h, rmoModel(), kRegisters).satisfied);
  EXPECT_TRUE(
      checkParametrizedOpacity(h, alphaModel(), kRegisters).satisfied);
}

// ---------------------------------------------- SI / strict-ser spectrum
//
// The four MVCC litmus files pin down the snapshot-isolation cell of the
// condition matrix: write skew and the read-only anomaly separate SI from
// strict serializability in one direction, the first-committer-wins rule
// separates it in the other, and lost update is excluded by every
// condition.

TEST(Corpus, WriteSkewSeparatesSiFromStrictSerializability) {
  History h = load("write_skew.hist");
  EXPECT_TRUE(checkSnapshotIsolation(h, kRegisters).satisfied);
  EXPECT_FALSE(checkStrictSerializability(h, kRegisters).satisfied);
  EXPECT_FALSE(checkOpacity(h, kRegisters).satisfied);
}

TEST(Corpus, LostUpdateViolatesEveryCondition) {
  History h = load("lost_update.hist");
  const CheckResult si = checkSnapshotIsolation(h, kRegisters);
  EXPECT_FALSE(si.satisfied);
  // The rejection comes from the first-committer-wins pre-check, not a
  // failed serialization search.
  EXPECT_NE(si.explanation.find("first-committer-wins"), std::string::npos)
      << si.explanation;
  EXPECT_FALSE(checkStrictSerializability(h, kRegisters).satisfied);
  EXPECT_FALSE(checkOpacity(h, kRegisters).satisfied);
}

TEST(Corpus, ReadOnlyAnomalyIsSnapshotIsolatedButNotSerializable) {
  History h = load("read_only_anomaly.hist");
  EXPECT_TRUE(checkSnapshotIsolation(h, kRegisters).satisfied);
  EXPECT_FALSE(checkStrictSerializability(h, kRegisters).satisfied);
}

TEST(Corpus, FcwRejectsWhatSerializabilityAccepts) {
  // The incomparability's other direction: SI is not a superset of
  // strict serializability.
  History h = load("fcw_nt_write.hist");
  EXPECT_FALSE(checkSnapshotIsolation(h, kRegisters).satisfied);
  EXPECT_TRUE(checkStrictSerializability(h, kRegisters).satisfied);
  EXPECT_TRUE(checkOpacity(h, kRegisters).satisfied);
}

TEST(Corpus, ConditionDispatcherAgreesWithTheDirectCheckers) {
  for (const char* name : {"write_skew.hist", "lost_update.hist",
                           "read_only_anomaly.hist", "fcw_nt_write.hist"}) {
    History h = load(name);
    EXPECT_EQ(
        checkCondition(ConditionKind::kSnapshotIsolation, h, scModel(),
                       kRegisters)
            .satisfied,
        checkSnapshotIsolation(h, kRegisters).satisfied)
        << name;
    EXPECT_EQ(
        checkCondition(ConditionKind::kStrictSerializability, h, scModel(),
                       kRegisters)
            .satisfied,
        checkStrictSerializability(h, kRegisters).satisfied)
        << name;
  }
}

TEST(Corpus, EveryFileRoundTrips) {
  for (const char* name :
       {"fig1_tear.hist", "fig3.hist", "aborted_observer.hist",
        "store_buffer.hist", "sgla_split.hist", "counter.hist",
        "dependent_mp.hist", "write_skew.hist", "lost_update.hist",
        "read_only_anomaly.hist", "fcw_nt_write.hist"}) {
    History h = load(name);
    auto r = litmus::parseHistory(litmus::formatHistory(h));
    ASSERT_TRUE(r) << name;
    EXPECT_EQ(*r.history, h) << name;
  }
}

}  // namespace
}  // namespace jungle
