// The brute-force reference checker cross-validated against both engine
// configurations (S3): the paper's litmus figures, the shipped corpus, and
// random instances must all produce three-way agreement — the reference
// shares no search code with the DecisionEngine, so agreement here is
// evidence about the definitions themselves.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/generator.hpp"
#include "fuzz/reference_checker.hpp"
#include "litmus/figures.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "spec/counter_spec.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle {
namespace {

SpecMap kRegisters;

SearchLimits serialLimits() {
  SearchLimits l;
  l.threads = 1;
  return l;
}

SearchLimits portfolioLimits() {
  SearchLimits l;
  l.threads = 4;
  return l;
}

/// Engine (serial + portfolio) vs reference on one (history, model, specs)
/// triple.  Returns false when the reference declined (too large).
bool expectThreeWayAgreement(const History& h, const MemoryModel& m,
                             const SpecMap& specs, const std::string& what) {
  const fuzz::RefVerdict ref = fuzz::referencePopacity(h, m, specs);
  if (ref == fuzz::RefVerdict::kTooLarge) return false;
  const CheckResult serial =
      checkParametrizedOpacity(h, m, specs, serialLimits());
  const CheckResult portfolio =
      checkParametrizedOpacity(h, m, specs, portfolioLimits());
  EXPECT_FALSE(serial.inconclusive) << what;
  EXPECT_FALSE(portfolio.inconclusive) << what;
  const bool refSat = ref == fuzz::RefVerdict::kSatisfied;
  EXPECT_EQ(serial.satisfied, refSat) << what << " [" << m.name() << "]";
  EXPECT_EQ(portfolio.satisfied, refSat) << what << " [" << m.name() << "]";
  return true;
}

TEST(ReferenceChecker, AgreesWithKnownFigureVerdicts) {
  // Anchor the reference to verdicts proved in the paper before using it
  // as an oracle: Figure 1's torn read and Figure 3's pending-commit pair.
  EXPECT_EQ(fuzz::referencePopacity(litmus::fig1History(1, 0), scModel(),
                                    kRegisters),
            fuzz::RefVerdict::kViolated);
  EXPECT_EQ(fuzz::referencePopacity(litmus::fig1History(1, 0), rmoModel(),
                                    kRegisters),
            fuzz::RefVerdict::kSatisfied);
  EXPECT_EQ(fuzz::referenceOpacity(litmus::storeBufferHistory(0, 0),
                                   kRegisters),
            fuzz::RefVerdict::kViolated);
  // Strict serializability erases the aborted writer: the read of its value
  // becomes unjustifiable, the read of the initial value becomes trivial.
  HistoryBuilder leak;
  leak.start(0).write(0, 0, 1).abort(0);
  leak.read(1, 0, 1);
  EXPECT_EQ(fuzz::referenceStrictSerializability(leak.build(), kRegisters),
            fuzz::RefVerdict::kViolated);
  HistoryBuilder clean;
  clean.start(0).write(0, 0, 1).abort(0);
  clean.read(1, 0, 0);
  EXPECT_EQ(fuzz::referenceStrictSerializability(clean.build(), kRegisters),
            fuzz::RefVerdict::kSatisfied);
}

TEST(ReferenceChecker, ThreeWayAgreementOnTheFigures) {
  const History figures[] = {
      litmus::fig1History(1, 0),  litmus::fig1History(1, 1),
      litmus::fig2aHistory(1, 2), litmus::fig2bHistory(1, 0),
      litmus::fig2cHistory(1, 1, 0), litmus::storeBufferHistory(0, 0),
      litmus::storeBufferHistory(1, 0),
  };
  std::size_t checked = 0;
  for (std::size_t i = 0; i < std::size(figures); ++i) {
    for (const MemoryModel* m : allModels()) {
      if (expectThreeWayAgreement(figures[i], *m, kRegisters,
                                  "figure #" + std::to_string(i))) {
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(ReferenceChecker, ThreeWayAgreementOnTheCorpus) {
  // Every shipped corpus verdict re-derived by naive enumeration (files the
  // enumeration caps exclude are skipped, and at least one must survive).
  std::size_t checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(JUNGLE_HISTORIES_DIR)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".hist") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = litmus::parseHistory(buf.str());
    ASSERT_TRUE(parsed) << entry.path() << ": " << parsed.error;
    SpecMap specs;
    if (entry.path().filename() == "counter.hist") {
      specs.assign(0, std::make_shared<CounterSpec>(0));
    }
    for (const MemoryModel* m : allModels()) {
      if (expectThreeWayAgreement(*parsed.history, *m, specs,
                                  entry.path().string())) {
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(ReferenceChecker, ThreeWayAgreementOnRandomInstances) {
  Rng rng(123);
  std::size_t checked = 0;
  for (int i = 0; i < 150; ++i) {
    const fuzz::GeneratedInstance gen =
        fuzz::randomHistory(rng, fuzz::randomGenOptions(rng));
    const MemoryModel& m = fuzz::randomModel(rng);
    if (expectThreeWayAgreement(gen.history, m, gen.specs,
                                "random #" + std::to_string(i))) {
      ++checked;
    }
    // Strict serializability goes through the erasure on both sides.
    const fuzz::RefVerdict ref =
        fuzz::referenceStrictSerializability(gen.history, gen.specs);
    if (ref != fuzz::RefVerdict::kTooLarge) {
      const CheckResult engine = checkStrictSerializability(
          gen.history, gen.specs, serialLimits());
      ASSERT_FALSE(engine.inconclusive);
      EXPECT_EQ(engine.satisfied, ref == fuzz::RefVerdict::kSatisfied)
          << "strict-ser random #" << i;
    }
  }
  EXPECT_GT(checked, 40u);  // the caps must not starve the oracle
}

TEST(ReferenceChecker, ErasureDropsAbortedAndIncompleteTransactions) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).write(1, 0, 2).abort(1);
  b.start(2).write(2, 0, 3);  // incomplete
  b.read(3, 0, 1);            // non-transactional: survives
  const History erased = fuzz::eraseNonCommittedTransactions(b.build());
  HistoryAnalysis a(erased);
  ASSERT_TRUE(a.wellFormed());
  EXPECT_EQ(a.transactions().size(), 1u);
  EXPECT_EQ(erased.size(), 4u) << erased.toString();
}

TEST(ReferenceChecker, DeclinesOversizedInstances) {
  HistoryBuilder b;
  for (ProcessId p = 0; p < 5; ++p) {
    b.start(p).write(p, 0, p + 1).commit(p);
  }
  EXPECT_EQ(fuzz::referencePopacity(b.build(), scModel(), kRegisters),
            fuzz::RefVerdict::kTooLarge);  // 5 transactions > cap of 4
}

}  // namespace
}  // namespace jungle
