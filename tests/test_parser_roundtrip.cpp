// printHistory/parseHistory round-trip (the contract the fuzz shrinker's
// .hist repros rely on): parseHistory(printHistory(h)) == h, property-tested
// over the shipped corpus, over every grammar form, and over generated
// random histories.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/generator.hpp"
#include "litmus/history_parser.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle {
namespace {

History roundTrip(const History& h, const std::string& what) {
  const std::string text = litmus::printHistory(h);
  auto reparsed = litmus::parseHistory(text);
  EXPECT_TRUE(reparsed) << what << ": " << reparsed.error << "\n" << text;
  EXPECT_EQ(*reparsed.history, h) << what << "\n" << text;
  return *reparsed.history;
}

TEST(ParserRoundTrip, WholeCorpusIncludingRegressions) {
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           JUNGLE_HISTORIES_DIR)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".hist") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = litmus::parseHistory(buf.str());
    ASSERT_TRUE(parsed) << entry.path() << ": " << parsed.error;
    roundTrip(*parsed.history, entry.path().string());
    ++files;
  }
  EXPECT_GE(files, 7u);  // the shipped corpus
}

TEST(ParserRoundTrip, EveryGrammarForm) {
  // One instance of each op kind, with explicit ids, dependence
  // annotations, named and numbered variables, and a deq-empty.
  const std::string text =
      "p0: start @1\n"
      "p0: wr x 1 @2\n"
      "p0: rd x 1 @3\n"
      "p0: cdwr y 2 deps=3 @4\n"
      "p0: ddrd y 2 deps=3,4 @5\n"
      "p0: commit @6\n"
      "p1: start @7\n"
      "p1: inc z 3 @8\n"
      "p1: ctrrd z 3 @9\n"
      "p1: abort @10\n"
      "p2: enq x4 7 @11\n"
      "p2: deq x4 7 @12\n"
      "p2: deq x4 empty @13\n"
      "p2: cdrd x 1 deps=11 @14\n"
      "p2: ddwr x 9 deps=14 @15\n";
  auto parsed = litmus::parseHistory(text);
  ASSERT_TRUE(parsed) << parsed.error;
  roundTrip(*parsed.history, "grammar-forms");
}

TEST(ParserRoundTrip, GeneratedRandomHistories) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const fuzz::GeneratedInstance gen =
        fuzz::randomHistory(rng, fuzz::randomGenOptions(rng));
    roundTrip(gen.history, "generated #" + std::to_string(i));
  }
}

TEST(ParserRoundTrip, FormatHistoryIsTheLegacyAlias) {
  auto parsed = litmus::parseHistory("p0: wr x 1\np0: rd x 1\n");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(litmus::formatHistory(*parsed.history),
            litmus::printHistory(*parsed.history));
}

}  // namespace
}  // namespace jungle
