// Strategy-equivalence suite for the exploration layer (ISSUE 3): sleep-set
// DPOR must be a pure *schedule* reduction — on every Figure-5 litmus
// program and a seeded set of generated workloads it has to reproduce
// exhaustive DFS's verdict and exact distinct-canonical-history set, serial
// and frontier-parallel alike.  Also covers the dedup cache, telemetry,
// deadlines, and the reference reduction-factor acceptance bound.
#include <gtest/gtest.h>

#include <atomic>

#include "fuzz/differential.hpp"
#include "sim/exploration.hpp"
#include "theorems/conformance.hpp"
#include "theorems/explorer_workloads.hpp"

namespace {

using namespace jungle;

RunVerifier acceptAll() {
  return [](const RunOutcome&) { return true; };
}

ExplorationStats explore(const theorems::ExplorerWorkload& w,
                         const ExploreOptions& opts,
                         const RunVerifier& verify) {
  return ScheduleExplorer(w.numThreads, w.words, w.program)
      .explore(opts, verify);
}

ExploreOptions dporOpts(unsigned threads = 1) {
  ExploreOptions opts;
  opts.strategy = ExploreStrategyKind::kSleepSetDpor;
  opts.threads = threads;
  opts.maxSteps = 200;
  opts.maxRuns = 50'000;
  return opts;
}

TEST(ExplorerStrategies, ParseStrategyNames) {
  EXPECT_EQ(parseExploreStrategy("dfs"),
            ExploreStrategyKind::kExhaustiveDfs);
  EXPECT_EQ(parseExploreStrategy("dpor"),
            ExploreStrategyKind::kSleepSetDpor);
  EXPECT_EQ(parseExploreStrategy("sample"),
            ExploreStrategyKind::kRandomSampling);
  EXPECT_FALSE(parseExploreStrategy("bfs").has_value());
  for (ExploreStrategyKind k :
       {ExploreStrategyKind::kExhaustiveDfs,
        ExploreStrategyKind::kSleepSetDpor,
        ExploreStrategyKind::kRandomSampling}) {
    EXPECT_EQ(parseExploreStrategy(exploreStrategyName(k)), k);
    EXPECT_EQ(explorationStrategy(k).kind(), k);
  }
}

// Every Figure-5 litmus program: DFS, serial DPOR, and frontier-parallel
// DPOR agree on the verdict under the TM's claimed model, and — for the
// spin-free programs, where every schedule completes — on the exact
// distinct-canonical-history set.
TEST(ExplorerStrategies, Figure5Equivalence) {
  for (const theorems::ExplorerWorkload& w : theorems::figure5Workloads()) {
    SCOPED_TRACE(w.name);
    ExploreOptions base;
    base.maxSteps = 400;
    // Spin-free spaces are fully enumerated for the exact history-set
    // comparison; the strong-atomicity program spins on per-word locks
    // (every lock access is dependent, so DPOR cannot reduce it) and gets
    // a bounded prefix — verdict agreement only.
    base.maxRuns = w.spinFree ? 50'000 : 1'200;
    base.timeout = std::chrono::milliseconds(60'000);
    // Equal canonical keys imply equal verdicts, so deduping the verifier
    // keeps the comparison exact while making the DFS legs affordable.
    base.dedupHistories = true;
    const fuzz::ScheduleDiffOutcome out = fuzz::diffCheckSchedules(w, base);
    EXPECT_FALSE(out.mismatch) << out.description;
    if (w.spinFree) {
      EXPECT_FALSE(out.inconclusive) << out.description;
      EXPECT_EQ(out.dfs.historyKeys, out.dpor.historyKeys);
      EXPECT_EQ(out.dpor.historyKeys, out.dporParallel.historyKeys);
      EXPECT_LE(out.dpor.runs, out.dfs.runs);
    }
    // The claimed model passes on every completed schedule, whichever
    // strategy enumerated them.
    EXPECT_EQ(out.dfs.failures, 0u);
    EXPECT_EQ(out.dpor.failures, 0u);
    EXPECT_EQ(out.dporParallel.failures, 0u);
  }
}

// Seeded raw-marker workloads: loop-free programs where the run
// abstraction is a pure function of the interleaving, so the history-set
// comparison is exact.  Seeds chosen to keep full DFS under the budget.
TEST(ExplorerStrategies, GeneratedWorkloadEquivalence) {
  for (std::uint64_t seed : {1ull, 3ull, 10ull, 45ull}) {
    const theorems::ExplorerWorkload w = theorems::generatedWorkload(seed);
    SCOPED_TRACE(w.name);
    ExploreOptions base;
    base.maxRuns = 50'000;
    base.timeout = std::chrono::milliseconds(60'000);
    const fuzz::ScheduleDiffOutcome out = fuzz::diffCheckSchedules(w, base);
    EXPECT_FALSE(out.mismatch) << out.description;
    EXPECT_FALSE(out.inconclusive) << out.description;
    EXPECT_EQ(out.dfs.historyKeys, out.dpor.historyKeys);
    EXPECT_EQ(out.dpor.historyKeys, out.dporParallel.historyKeys);
  }
}

// The ISSUE 3 acceptance bound, on the reference program where DFS
// explores C(16,8) = 12870 schedules: DPOR must reach the identical
// verdict and identical distinct-history set in at most a fifth of the
// schedules (it actually needs ~1/2000), and the frontier-parallel run
// must agree exactly with the serial one.
TEST(ExplorerStrategies, ReferenceReductionFactor) {
  const theorems::ExplorerWorkload w = theorems::referenceReductionWorkload();
  const ExplorationStats dfs = explore(w, [] {
    ExploreOptions o = dporOpts();
    o.strategy = ExploreStrategyKind::kExhaustiveDfs;
    return o;
  }(), acceptAll());
  const ExplorationStats dpor = explore(w, dporOpts(), acceptAll());
  const ExplorationStats par = explore(w, dporOpts(4), acceptAll());

  ASSERT_FALSE(dfs.runBudgetExhausted);
  ASSERT_FALSE(dfs.deadlineExpired);
  EXPECT_GE(dfs.runs, 10'000u);
  EXPECT_EQ(dfs.cutRuns, 0u);
  EXPECT_LE(dpor.runs * 5, dfs.runs);
  EXPECT_EQ(dpor.failures, dfs.failures);
  EXPECT_EQ(dpor.historyKeys, dfs.historyKeys);
  EXPECT_EQ(par.historyKeys, dpor.historyKeys);
  EXPECT_EQ(par.failures, dpor.failures);
  EXPECT_GT(dpor.racesReversed, 0u);
}

// With dedup on, the verifier runs once per distinct canonical history;
// cached verdicts still count toward `failures`.
TEST(ExplorerStrategies, DedupSkipsVerifierButReplaysVerdicts) {
  const theorems::ExplorerWorkload w = theorems::figure5Workloads().front();
  ExploreOptions opts;
  opts.maxSteps = 400;
  opts.maxRuns = 50'000;
  opts.dedupHistories = true;

  std::atomic<std::size_t> calls{0};
  const ExplorationStats stats = explore(w, opts, [&](const RunOutcome&) {
    ++calls;
    return false;  // every history "fails": cached verdicts must replay
  });
  ASSERT_FALSE(stats.runBudgetExhausted);
  EXPECT_EQ(calls.load(), stats.distinctHistories);
  EXPECT_EQ(stats.dedupHits, stats.completedRuns - stats.distinctHistories);
  EXPECT_GT(stats.dedupHits, 0u);
  EXPECT_EQ(stats.failures, stats.completedRuns);
}

TEST(ExplorerStrategies, TelemetryIsPopulated) {
  const theorems::ExplorerWorkload w = theorems::generatedWorkload(45);
  const ExplorationStats stats = explore(w, dporOpts(), acceptAll());
  EXPECT_GT(stats.runs, 0u);
  EXPECT_EQ(stats.runs, stats.completedRuns + stats.cutRuns);
  EXPECT_GT(stats.wallSeconds, 0.0);
  EXPECT_EQ(stats.historyKeys.size(), stats.distinctHistories);
  EXPECT_TRUE(
      std::is_sorted(stats.historyKeys.begin(), stats.historyKeys.end()));
  EXPECT_FALSE(stats.summary().empty());
}

// A deadline in the past stops exploration early and is reported as such
// rather than as a verdict.
TEST(ExplorerStrategies, DeadlineStopsExploration) {
  const theorems::ExplorerWorkload w = theorems::referenceReductionWorkload();
  ExploreOptions opts;
  opts.maxSteps = 200;
  opts.maxRuns = 50'000;
  opts.timeout = std::chrono::milliseconds(1);
  const ExplorationStats stats = explore(w, opts, acceptAll());
  EXPECT_TRUE(stats.deadlineExpired);
  EXPECT_LT(stats.runs, 12'870u);
}

// Random sampling draws each sample from Rng(hash(seed, i)), so the
// sampled schedule set is invariant under the worker-thread count.
TEST(ExplorerStrategies, SamplingInvariantUnderThreads) {
  const theorems::ExplorerWorkload w = theorems::generatedWorkload(45);
  ExploreOptions opts;
  opts.strategy = ExploreStrategyKind::kRandomSampling;
  opts.samples = 24;
  opts.seed = 7;
  ExplorationStats serial = explore(w, opts, acceptAll());
  opts.threads = 4;
  ExplorationStats parallel = explore(w, opts, acceptAll());
  EXPECT_EQ(serial.runs, 24u);
  EXPECT_EQ(parallel.runs, 24u);
  EXPECT_EQ(serial.historyKeys, parallel.historyKeys);
}

// DPOR on a real TM stress workload: spin loops mean some runs hit the
// step bound; the strategy must survive cut runs and report them.
TEST(ExplorerStrategies, DporSurvivesCutRuns) {
  theorems::StressOptions stress;
  stress.numProcs = 2;
  stress.numVars = 2;
  stress.actionsPerProc = 2;
  stress.txLen = 2;
  stress.seed = 11;
  const Program program =
      theorems::stressProgram(TmKind::kGlobalLock, stress);
  ExploreOptions opts = dporOpts();
  opts.maxSteps = 40;  // deliberately tight: force cut runs
  opts.maxRuns = 2'000;
  const ExplorationStats stats = ScheduleExplorer(
      stress.numProcs, theorems::stressWords(TmKind::kGlobalLock, stress),
      program).explore(opts, acceptAll());
  EXPECT_GT(stats.runs, 0u);
  EXPECT_EQ(stats.runs, stats.completedRuns + stats.cutRuns);
}

}  // namespace
