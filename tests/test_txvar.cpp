// Tests for the typed layer: TxVar<T>, VarSpace, and the privatization
// protocol (the paper's §1 motivating pattern).
#include <gtest/gtest.h>

#include <thread>

#include "tm/runtime.hpp"
#include "tm/txvar.hpp"

namespace jungle {
namespace {

TEST(WordConversion, RoundTripsCommonTypes) {
  EXPECT_EQ(fromWord<std::uint32_t>(toWord<std::uint32_t>(0xdeadbeef)),
            0xdeadbeefu);
  EXPECT_EQ(fromWord<std::int64_t>(toWord<std::int64_t>(-42)), -42);
  EXPECT_DOUBLE_EQ(fromWord<double>(toWord<double>(3.25)), 3.25);
  EXPECT_EQ(fromWord<bool>(toWord<bool>(true)), true);
}

class TxVarTest : public ::testing::TestWithParam<TmKind> {
 protected:
  TxVarTest()
      : mem_(runtimeMemoryWords(GetParam(), 8)),
        tm_(makeNativeRuntime(GetParam(), mem_, 8, 4)),
        space_(*tm_, 8) {}

  NativeMemory mem_;
  std::unique_ptr<TmRuntime> tm_;
  VarSpace space_;
};

TEST_P(TxVarTest, TypedTransactionalAccess) {
  auto balance = space_.alloc<std::int64_t>("balance");
  auto rate = space_.alloc<double>("rate");
  tm_->transaction(0, [&](TxContext& tx) {
    balance.set(tx, -500);
    rate.set(tx, 1.5);
  });
  tm_->transaction(1, [&](TxContext& tx) {
    EXPECT_EQ(balance.get(tx), -500);
    EXPECT_DOUBLE_EQ(rate.get(tx), 1.5);
    balance.set(tx, balance.get(tx) + 100);
  });
  EXPECT_EQ(balance.load(0), -400);
}

TEST_P(TxVarTest, PlainAccessRoundTrips) {
  auto flag = space_.alloc<bool>("flag");
  flag.store(0, true);
  EXPECT_TRUE(flag.load(1));
}

TEST_P(TxVarTest, VarSpaceTracksNamesAndCapacity) {
  auto a = space_.alloc<Word>("a");
  auto b = space_.alloc<Word>("b");
  EXPECT_EQ(space_.nameOf(a.slot()), "a");
  EXPECT_EQ(space_.nameOf(b.slot()), "b");
  EXPECT_EQ(space_.used(), 2u);
  EXPECT_NE(a.slot(), b.slot());
}

// kVersionedWrite now stores full 64-bit values (the (pid, version) tag
// moved to a separate tag word), so it runs the same 64-bit-pattern suite
// as the other kinds.
INSTANTIATE_TEST_SUITE_P(Kinds, TxVarTest,
                         ::testing::Values(TmKind::kGlobalLock,
                                           TmKind::kVersionedWrite,
                                           TmKind::kStrongAtomicity),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(TxVarVersionedWrite, SixtyFourBitValuesRoundTrip) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kVersionedWrite, 8));
  auto tm = makeNativeRuntime(TmKind::kVersionedWrite, mem, 8, 2);
  VarSpace space(*tm, 8);
  auto count = space.alloc<std::uint64_t>("count");
  auto ratio = space.alloc<double>("ratio");
  tm->transaction(0, [&](TxContext& tx) {
    count.set(tx, (std::uint64_t{1} << 52) + 3);
    ratio.set(tx, 2.5);
  });
  EXPECT_EQ(count.load(1), (std::uint64_t{1} << 52) + 3);
  EXPECT_DOUBLE_EQ(ratio.load(1), 2.5);
  count.store(1, ~std::uint64_t{0});
  tm->transaction(0, [&](TxContext& tx) {
    EXPECT_EQ(count.get(tx), ~std::uint64_t{0});
  });
}

// ----------------------------------------------------------- privatization

class PrivatizationTest : public ::testing::TestWithParam<TmKind> {
 protected:
  static constexpr std::size_t kRegionSize = 4;

  PrivatizationTest()
      : mem_(runtimeMemoryWords(GetParam(), kRegionSize + 1)),
        tm_(makeNativeRuntime(GetParam(), mem_, kRegionSize + 1, 4)),
        region_(*tm_, kRegionSize, {0, 1, 2, 3}) {}

  NativeMemory mem_;
  std::unique_ptr<TmRuntime> tm_;
  PrivatizableRegion region_;
};

TEST_P(PrivatizationTest, ExclusiveOwnership) {
  EXPECT_TRUE(region_.privatize(0));
  EXPECT_FALSE(region_.privatize(1));  // held by 0
  EXPECT_TRUE(region_.ownedBy(0));
  EXPECT_FALSE(region_.ownedBy(1));
  region_.publish(0);
  EXPECT_TRUE(region_.privatize(1));
  region_.publish(1);
}

TEST_P(PrivatizationTest, PlainUpdatesSurvivePublish) {
  ASSERT_TRUE(region_.privatize(0));
  for (std::size_t i = 0; i < kRegionSize; ++i) {
    region_.write(0, i, 10 + i);
  }
  region_.publish(0);
  // Visible transactionally afterwards.
  tm_->transaction(1, [&](TxContext& tx) {
    for (std::size_t i = 0; i < kRegionSize; ++i) {
      EXPECT_EQ(region_.txRead(tx, i), 10 + i);
    }
  });
}

TEST_P(PrivatizationTest, ConcurrentWorkersNeverLoseIncrements) {
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      const auto pid = static_cast<ProcessId>(t);
      int done = 0;
      while (done < kPerThread) {
        if (!region_.privatize(pid)) {
          std::this_thread::yield();
          continue;
        }
        region_.write(pid, 0, region_.read(pid, 0) + 1);
        region_.publish(pid);
        ++done;
      }
    });
  }
  for (auto& w : workers) w.join();
  tm_->transaction(0, [&](TxContext& tx) {
    EXPECT_EQ(region_.txRead(tx, 0), 3u * kPerThread);
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, PrivatizationTest,
                         ::testing::Values(TmKind::kGlobalLock,
                                           TmKind::kWriteAsTx,
                                           TmKind::kVersionedWrite,
                                           TmKind::kStrongAtomicity),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace jungle
