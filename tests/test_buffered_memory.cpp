// The TM implementations on simulated TSO hardware (§4's programmer-model
// vs hardware-model distinction): the store-buffer memory policy delays
// plain stores; logical points move to drain time; and the guarantees of
// Theorems 3 and 5 survive because the algorithms' ordering-critical steps
// are locked instructions (CAS) that flush the buffer.
#include <gtest/gtest.h>

#include <thread>

#include "memmodel/models.hpp"
#include "sim/buffered_memory.hpp"
#include "theorems/conformance.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/versioned_write_tm.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

// --------------------------------------------------------------- basics

TEST(BufferedMemory, ForwardsOwnBufferedStores) {
  TsoBufferedMemory::Options opts;
  opts.drainChancePct = 0;  // nothing drains on its own
  TsoBufferedMemory mem(4, opts);
  const OpId op = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(5));
  mem.store(0, 0, 5);
  mem.endOp(0, op, OpType::kCommand, 0, cmdWrite(5));
  // Own load sees the buffered value; another thread does not.
  const OpId r0 = mem.beginOp(0, OpType::kCommand, 0, cmdRead(0));
  EXPECT_EQ(mem.load(0, 0), 5u);
  mem.endOp(0, r0, OpType::kCommand, 0, cmdRead(5));
  const OpId r1 = mem.beginOp(1, OpType::kCommand, 0, cmdRead(0));
  EXPECT_EQ(mem.load(1, 0), 0u);
  mem.endOp(1, r1, OpType::kCommand, 0, cmdRead(0));
  // After a fence the store is globally visible.
  mem.fence(0);
  const OpId r2 = mem.beginOp(1, OpType::kCommand, 0, cmdRead(0));
  EXPECT_EQ(mem.load(1, 0), 5u);
  mem.endOp(1, r2, OpType::kCommand, 0, cmdRead(5));
}

TEST(BufferedMemory, CasDrainsTheIssuersBuffer) {
  TsoBufferedMemory::Options opts;
  opts.drainChancePct = 0;
  TsoBufferedMemory mem(4, opts);
  const OpId op = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(5));
  mem.store(0, 0, 5);
  EXPECT_TRUE(mem.cas(0, 1, 0, 9));  // locked insn: flushes the buffer
  mem.endOp(0, op, OpType::kCommand, 0, cmdWrite(5));
  const OpId r = mem.beginOp(1, OpType::kCommand, 0, cmdRead(0));
  EXPECT_EQ(mem.load(1, 0), 5u);
  mem.endOp(1, r, OpType::kCommand, 0, cmdRead(5));
}

TEST(BufferedMemory, PointDefersToDrain) {
  TsoBufferedMemory::Options opts;
  opts.drainChancePct = 0;
  TsoBufferedMemory mem(4, opts);
  const OpId op = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(5));
  mem.store(0, 0, 5);
  mem.markPoint(0, op);  // deferred: the store is still buffered
  mem.endOp(0, op, OpType::kCommand, 0, cmdWrite(5));
  Trace before = mem.trace();
  for (const Insn& i : before.insns) EXPECT_NE(i.kind, InsnKind::kPoint);
  mem.drainAll();
  Trace after = mem.trace();
  EXPECT_EQ(after.insns.back().kind, InsnKind::kPoint);
  EXPECT_EQ(after.insns.back().opId, op);
}

// ------------------------------------------- conformance on weak hardware

template <template <class> class TmT>
Trace stressOnTso(std::uint64_t seed, bool drainOnRespond) {
  TsoBufferedMemory::Options opts;
  opts.seed = seed;
  opts.drainChancePct = 30;
  opts.drainOnRespond = drainOnRespond;
  constexpr std::size_t kVars = 3;
  TsoBufferedMemory mem(TmT<TsoBufferedMemory>::memoryWords(kVars), opts);
  TmT<TsoBufferedMemory> tm(mem, kVars);

  auto worker = [&](ProcessId pid) {
    auto t = tm.makeThread(pid);
    Rng rng(seed * 977 + pid);
    for (int a = 0; a < 4; ++a) {
      if (rng.chance(1, 2)) {
        tm.txStart(t);
        const std::size_t len = 1 + rng.below(2);
        for (std::size_t i = 0; i < len; ++i) {
          const auto x = static_cast<ObjectId>(rng.below(kVars));
          if (rng.chance(1, 2)) {
            tm.txWrite(t, x, 1 + rng.below(9));
          } else {
            (void)tm.txRead(t, x);
          }
        }
        tm.txCommit(t);
      } else {
        const auto x = static_cast<ObjectId>(rng.below(kVars));
        if (rng.chance(1, 2)) {
          tm.ntWrite(t, x, 1 + rng.below(9));
        } else {
          (void)tm.ntRead(t, x);
        }
      }
    }
  };
  std::thread t1(worker, 0);
  std::thread t2(worker, 1);
  t1.join();
  t2.join();
  mem.drainAll();
  return mem.trace();
}

TEST(TsoHardware, GlobalLockStillIdealizedOpaque) {
  // Theorem 3's TM on TSO hardware: the drain-time logical points yield
  // traces whose canonical histories remain opaque for the idealized
  // model across seeds.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Trace r = stressOnTso<GlobalLockTm>(seed, /*drainOnRespond=*/false);
    auto res =
        theorems::checkTracePopacity(r, idealizedModel(), kRegisters);
    EXPECT_TRUE(res.ok) << "seed " << seed << "\n"
                        << res.canonical.toString();
  }
}

TEST(TsoHardware, VersionedWriteStillAlphaOpaque) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Trace r = stressOnTso<VersionedWriteTm>(seed, /*drainOnRespond=*/false);
    auto res = theorems::checkTracePopacity(r, alphaModel(), kRegisters);
    EXPECT_TRUE(res.ok) << "seed " << seed << "\n"
                        << res.canonical.toString();
  }
}

TEST(TsoHardware, DrainOnRespondAlsoConforms) {
  // With a fence at every operation end (strict completion), hardware
  // behaves like the §4 idealization: points always precede responds.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Trace r = stressOnTso<GlobalLockTm>(seed, /*drainOnRespond=*/true);
    auto res =
        theorems::checkTracePopacity(r, idealizedModel(), kRegisters);
    EXPECT_TRUE(res.ok) << "seed " << seed;
  }
}

TEST(TsoHardware, BufferedTracesAreNotFlatMachineConsistent) {
  // Documents the semantic gap: replaying a buffered trace against a flat
  // memory fails for some seed (loads legitimately return stale values).
  bool sawInconsistent = false;
  for (std::uint64_t seed = 1; seed <= 12 && !sawInconsistent; ++seed) {
    Trace r = stressOnTso<GlobalLockTm>(seed, false);
    sawInconsistent = !traceMachineConsistent(r);
  }
  EXPECT_TRUE(sawInconsistent)
      << "expected at least one stale-read trace across seeds";
}

}  // namespace
}  // namespace jungle
