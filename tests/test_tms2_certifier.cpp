// The TMS2 incremental certifier (monitor/tms2_certifier.hpp) tested at
// every layer: the automaton's white-box contracts (old-snapshot reader
// placement, stale-read updater insertion with its write/read-
// intersection guards, lowest-feasible committer placement, the rt-floor
// that blocks real-time-separated stale reads, own-write overlays,
// unknown-object adoption), the stream checker's
// three-tier dispatch (certified units avoid the engine entirely, the
// buffered drain resolves claim-inverted writer/reader pairs without an
// escalation, the four per-path buckets partition unitsChecked), the
// corpus-wide differential — every shipped .hist replayed through
// certifier-on and certifier-off checkers must get the identical verdict,
// with store_buffer.hist pinned as a history that MUST fall back to
// escalation — and the end-to-end gate: the injected-bug self-test still
// convicts every TM kind with the certifier enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "monitor/monitor.hpp"
#include "monitor/tms2_certifier.hpp"
#include "sim/memory_policy.hpp"
#include "tm/runtime.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle::monitor {
namespace {

// --------------------------------------------------------------- helpers

StreamUnit txUnit(ProcessId pid, std::uint64_t base,
                  std::vector<MonitorEvent> body,
                  StreamUnit::Kind kind = StreamUnit::Kind::kCommittedTx) {
  StreamUnit u;
  u.kind = kind;
  u.pid = pid;
  u.epoch = base;
  u.events.push_back({base, kNoObject, EventKind::kTxStart, 0});
  for (MonitorEvent e : body) {
    e.ticket = base;
    u.events.push_back(e);
  }
  u.events.push_back({base + 1, kNoObject,
                      kind == StreamUnit::Kind::kAbortedTx
                          ? EventKind::kTxAbort
                          : EventKind::kTxCommit,
                      0});
  return u;
}

StreamOptions smallOpts() {
  StreamOptions so;
  so.model = &scModel();
  so.gcRetain = 4;
  so.settleUnits = 2;
  so.recheckTimeout = std::chrono::milliseconds(2000);
  return so;
}

MonitorEvent rd(ObjectId x, Word v) { return {0, x, EventKind::kTxRead, v}; }
MonitorEvent wr(ObjectId x, Word v) { return {0, x, EventKind::kTxWrite, v}; }

/// Stretch a unit's claim window: the close ticket is flush-claimed and
/// can be arbitrarily later than the start, which is what makes
/// certifiable overlap possible at all.  (Ticket ties are real-time
/// precedence, not overlap — see the floor rule — so overlap tests need
/// genuinely spanning windows.)
StreamUnit withEnd(StreamUnit u, std::uint64_t end) {
  u.events.back().ticket = end;
  return u;
}

// ------------------------------------------------- automaton white-box

TEST(Tms2Certifier, ReaderPathRefusesUpdaters) {
  // The reader path serializes at an existing memory and must not create
  // one: updating units are the insertion path's job (tryCertifyUpdater),
  // never this one's.
  Tms2Certifier c(4, false);
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_FALSE(c.tryCertifyReader(txUnit(0, 10, {wr(1, 5)}), &adopted));
  EXPECT_FALSE(
      c.tryCertifyReader(txUnit(0, 10, {rd(1, 0), wr(1, 5)}), &adopted));
  // An aborted transaction's writes are own-only: it does not update
  // memory, so its reads CAN be certified here — and the updater path
  // symmetrically refuses it.
  EXPECT_TRUE(c.tryCertifyReader(
      txUnit(0, 10, {wr(1, 5), rd(1, 5)}, StreamUnit::Kind::kAbortedTx),
      &adopted));
  EXPECT_FALSE(c.tryCertifyUpdater(
      txUnit(0, 11, {wr(1, 5), rd(1, 5)}, StreamUnit::Kind::kAbortedTx),
      &adopted));
}

TEST(Tms2Certifier, StaleReadUpdaterCertifiesByInsertion) {
  // W1 publishes x=1 (close 11); W2 publishes x=2 with a claim window
  // spanning [20, 30].  U starts at 21 (overlapping W2), read the
  // pre-W2 x=1 and writes a DISJOINT object: TMS2 serializes U between
  // W1 and W2 — its snapshot inserts below W2, whose memory it does not
  // disturb (W2 neither wrote nor read object 9).
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(withEnd(txUnit(0, 20, {wr(7, 2)}), 30));
  ASSERT_EQ(c.retainedSlots(), 2u);
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_TRUE(
      c.tryCertifyUpdater(txUnit(1, 21, {rd(7, 1), wr(9, 5)}), &adopted));
  EXPECT_EQ(c.retainedSlots(), 3u);
  // Its writes reached the latest memory unshadowed: a fresh reader of
  // {x=2, 9=5} is the plain latest-memory view.
  EXPECT_TRUE(
      c.tryCertifyReader(txUnit(2, 40, {rd(7, 2), rd(9, 5)}), &adopted));
}

TEST(Tms2Certifier, InsertionRefusedWhenAnUpperSlotWroteTheObject) {
  // Same shape, but U writes the SAME object W2 wrote: inserting below W2
  // would shadow U's write and rewrite the memory W2's readers saw — the
  // write-intersection guard refuses, and the appended position is
  // infeasible too (U's read of x is stale there).
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(withEnd(txUnit(0, 20, {wr(7, 2)}), 30));
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_FALSE(
      c.tryCertifyUpdater(txUnit(1, 21, {rd(7, 1), wr(7, 9)}), &adopted));
}

TEST(Tms2Certifier, InsertionRefusedWhenAnUpperSlotReadTheObject) {
  // W2 read object 9 when it committed (tracked in its slot's read set):
  // U's write of 9 below W2 would sit inside W2's validated memory, so
  // the read-intersection guard refuses — this is the exact condition
  // that keeps store-buffer cycles escalating.
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(withEnd(txUnit(0, 20, {rd(9, 0), wr(7, 2)}), 30));
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_FALSE(
      c.tryCertifyUpdater(txUnit(1, 21, {rd(7, 1), wr(9, 5)}), &adopted));
}

TEST(Tms2Certifier, AdmittedCommitterSinksBelowConcurrentLateCloser) {
  // Feed order between concurrent disjoint committers is arbitrary: W1
  // (late closer, [10, 100]) is fed first, W2 (early closer, [20, 21])
  // second.  Blind appending would pin W2 above W1 and its close ticket
  // would floor the stale reader R (start 22) above W1's snapshot;
  // lowest-feasible placement sinks W2 below W1, so R certifies at the
  // memory where x is still unwritten and y is W2's — the serialization
  // W2, R, W1 the engine would also have found.
  Tms2Certifier c(4, false);
  c.noteAdmitted(withEnd(txUnit(0, 10, {wr(7, 1)}), 100));
  c.noteAdmitted(withEnd(txUnit(1, 20, {wr(8, 2)}), 21));
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_TRUE(
      c.tryCertifyReader(txUnit(2, 22, {rd(7, 0), rd(8, 2)}), &adopted));
}

TEST(Tms2Certifier, OldSnapshotReaderCertifiedWithinRtFloor) {
  // W1 publishes x=1 (close 11), W2 publishes x=2 with a claim window
  // spanning [20, 25].  A reader starting at 21 overlaps W2, so TMS2 lets
  // it validate against the pre-W2 memory and read the stale x=1.
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(withEnd(txUnit(0, 20, {wr(7, 2)}), 25));
  ASSERT_EQ(c.retainedSlots(), 2u);
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 21, {rd(7, 1)}), &adopted));
  EXPECT_TRUE(adopted.empty());
  // The latest value always certifies too.
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 22, {rd(7, 2)}), &adopted));
}

TEST(Tms2Certifier, RtFloorBlocksRtSeparatedStaleReader) {
  // Same writers, but the reader starts after W2's close ticket 25.  Real
  // time forces it at or past W2's memory, where x=2; reading x=1 cannot
  // be certified (and is in fact a violation the engine will confirm —
  // see the stream-level twin below).  A TIE with the close ticket is
  // precedence too: the window history's stable per-ticket interleave
  // puts the earlier unit's close before the later unit's start.
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(withEnd(txUnit(0, 20, {wr(7, 2)}), 25));
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_FALSE(c.tryCertifyReader(txUnit(1, 30, {rd(7, 1)}), &adopted));
  EXPECT_FALSE(c.tryCertifyReader(txUnit(1, 25, {rd(7, 1)}), &adopted));
}

TEST(Tms2Certifier, FastPathReadersTightenTheLatestSlotsMinEnd) {
  // A stale read starting at 23 certifies while every unit serialized at
  // the latest memory is still open; once a fast-path reader of the
  // latest value CLOSES at 25 (noteAdmitted lowers the slot's minEnd),
  // a stale read starting after that close is rt-after it and must
  // escalate.
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(withEnd(txUnit(0, 20, {wr(7, 2)}), 30));
  std::vector<std::pair<ObjectId, Word>> adopted;
  ASSERT_TRUE(c.tryCertifyReader(txUnit(1, 23, {rd(7, 1)}), &adopted));
  c.noteAdmitted(withEnd(txUnit(2, 24, {rd(7, 2)}), 25));
  EXPECT_FALSE(c.tryCertifyReader(txUnit(3, 26, {rd(7, 1)}), &adopted));
}

TEST(Tms2Certifier, OwnWriteOverlayShadowsMemory) {
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(3, 1)}));
  std::vector<std::pair<ObjectId, Word>> adopted;
  // An aborted transaction reads its own buffered write, not memory...
  EXPECT_TRUE(c.tryCertifyReader(
      txUnit(1, 20, {wr(3, 9), rd(3, 9)}, StreamUnit::Kind::kAbortedTx),
      &adopted));
  // ...and a read that contradicts its own earlier write can never be
  // explained by any snapshot.
  EXPECT_FALSE(c.tryCertifyReader(
      txUnit(1, 21, {wr(3, 9), rd(3, 1)}, StreamUnit::Kind::kAbortedTx),
      &adopted));
}

TEST(Tms2Certifier, UnknownObjectAdoptionIsConsistentAndOneShot) {
  // Post-resync posture: the first read of an unwritten object defines its
  // value (mirroring the checker's adopt-on-first-read); a later read of a
  // DIFFERENT value for the same object must escalate, and a unit reading
  // two clashing values of one unknown object can never certify.
  Tms2Certifier c(4, true);
  std::vector<std::pair<ObjectId, Word>> adopted;
  ASSERT_TRUE(c.tryCertifyReader(txUnit(0, 10, {rd(5, 42)}), &adopted));
  ASSERT_EQ(adopted.size(), 1u);
  EXPECT_EQ(adopted[0].first, 5u);
  EXPECT_EQ(adopted[0].second, 42u);
  adopted.clear();
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 20, {rd(5, 42)}), &adopted));
  EXPECT_TRUE(adopted.empty()) << "second read of an adopted object";
  EXPECT_FALSE(c.tryCertifyReader(txUnit(1, 21, {rd(5, 7)}), &adopted));
  EXPECT_FALSE(
      c.tryCertifyReader(txUnit(2, 22, {rd(6, 1), rd(6, 2)}), &adopted));
}

TEST(Tms2Certifier, NoAdoptionForObjectsAnyRetainedSlotWrites) {
  // Once a retained snapshot writes x, "x is unknown in the base" no
  // longer implies "x is unknown in the latest memory" — adoption must
  // refuse, even when startUnknown holds.
  Tms2Certifier c(4, true);
  c.noteAdmitted(txUnit(0, 10, {wr(5, 1)}));
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_FALSE(c.tryCertifyReader(txUnit(1, 20, {rd(5, 42)}), &adopted));
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 21, {rd(5, 1)}), &adopted));
}

TEST(Tms2Certifier, DepthBoundFoldsOldSnapshotsAway) {
  // depth=1: only the newest snapshot is retained; older memories fold
  // into the base.  The base still serves the immediately-pre-latest
  // memory (x=2), but the two-generations-old x=1 no longer exists
  // anywhere and its reader is undecidable here.
  Tms2Certifier c(1, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  c.noteAdmitted(txUnit(0, 20, {wr(7, 2)}));
  c.noteAdmitted(withEnd(txUnit(0, 30, {wr(7, 3)}), 40));
  EXPECT_EQ(c.retainedSlots(), 1u);
  std::vector<std::pair<ObjectId, Word>> adopted;
  EXPECT_FALSE(c.tryCertifyReader(txUnit(1, 31, {rd(7, 1)}), &adopted));
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 32, {rd(7, 2)}), &adopted));
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 33, {rd(7, 3)}), &adopted));
}

TEST(Tms2Certifier, ResetForgetsAndRebuildRestarts) {
  Tms2Certifier c(4, false);
  c.noteAdmitted(txUnit(0, 10, {wr(7, 1)}));
  std::vector<std::pair<ObjectId, Word>> adopted;
  ASSERT_TRUE(c.tryCertifyReader(txUnit(1, 20, {rd(7, 1)}), &adopted));
  c.reset();
  EXPECT_EQ(c.retainedSlots(), 0u);
  // Post-reset everything is unknown: a read adopts rather than matches.
  adopted.clear();
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 30, {rd(7, 9)}), &adopted));
  EXPECT_EQ(adopted.size(), 1u);
  // Rebuild from an engine-collapsed state: the summary is the sole
  // (known) memory, so reads must match it again.
  std::unordered_map<ObjectId, Word> state{{7, 5}};
  c.rebuild(state, true);
  adopted.clear();
  EXPECT_TRUE(c.tryCertifyReader(txUnit(1, 40, {rd(7, 5)}), &adopted));
  EXPECT_FALSE(c.tryCertifyReader(txUnit(1, 41, {rd(7, 1)}), &adopted));
}

// ------------------------------------------- stream three-tier dispatch

TEST(CertifierStream, OldSnapshotReaderNeverReachesTheEngine) {
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {wr(7, 1)}));
  c.feed(withEnd(txUnit(0, 20, {wr(7, 2)}), 25));
  c.feed(txUnit(1, 21, {rd(7, 1)}));  // stale but claim-overlapping
  c.finish();
  const StreamStats& s = c.stats();
  EXPECT_EQ(s.violations, 0u);
  EXPECT_EQ(s.rechecks, 0u) << "certifier missed: engine ran";
  EXPECT_EQ(s.fastPathUnits, 2u);
  EXPECT_EQ(s.certifiedUnits, 1u);
  EXPECT_EQ(s.escalatedUnits, 0u);
  EXPECT_GE(s.certifierAttempts, 1u);
  // Escalation latency telemetry untouched on a fully certified run.
  EXPECT_EQ(s.escalationUsTotal, 0u);
  EXPECT_EQ(s.escalationUsMin, 0u);
  EXPECT_EQ(s.escalationUsMax, 0u);
}

TEST(CertifierStream, RtSeparatedStaleReadEscalatesAndStillConvicts) {
  // The rt-floor twin: reader starts strictly after the newer writer's
  // close, so the certifier refuses and the engine convicts — with and
  // without the certifier, identically.
  for (bool certify : {true, false}) {
    StreamOptions so = smallOpts();
    so.certify = certify;
    StreamChecker c(so);
    c.feed(txUnit(0, 10, {wr(7, 1)}));
    c.feed(txUnit(0, 20, {wr(7, 2)}));
    c.feed(txUnit(1, 30, {rd(7, 1)}));
    for (std::uint64_t i = 0; i < 8; ++i) {
      c.feed(txUnit(0, 40 + 10 * i, {wr(9, 5)}));
    }
    c.finish();
    const StreamStats& s = c.stats();
    EXPECT_GE(s.violations, 1u) << "certify=" << certify;
    EXPECT_GE(s.rechecks, 1u) << "certify=" << certify;
    if (certify) {
      EXPECT_GE(s.escalatedUnits, 1u);
    }
  }
}

TEST(CertifierStream, DrainResolvesClaimInvertedWriterReaderPair) {
  // The reader of x=7 is fed BEFORE the writer that explains it (the
  // writer linearized first but claimed its epoch later).  Pre-certifier
  // this cost a full engine escalation; the buffered drain now admits the
  // writer, replays the reader, and returns to fast mode engine-free.
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {wr(3, 1)}));
  // Reader spans [20, 23], writer [21, 22]: genuinely concurrent.
  c.feed(withEnd(txUnit(1, 20, {rd(3, 7)}), 23));  // inexplicable: buffers
  c.feed(txUnit(0, 21, {wr(3, 7)}));  // the late-claiming explainer
  c.feed(txUnit(1, 30, {rd(3, 7)}));  // fast again after the drain
  c.finish();
  const StreamStats& s = c.stats();
  EXPECT_EQ(s.violations, 0u);
  EXPECT_EQ(s.rechecks, 0u) << "drain failed: engine ran";
  EXPECT_EQ(s.certifiedUnits, 2u);  // the buffered pair, drain-decided
  EXPECT_EQ(s.fastPathUnits, 2u);
  EXPECT_EQ(s.unitsChecked, 4u);
}

TEST(CertifierStream, StaleReadUpdaterNeverReachesTheEngine) {
  // The dominant real escalation pre-insertion: a committer that
  // linearized before a competitor but was fed after it (its read is one
  // snapshot stale).  The certifier inserts its snapshot below the
  // competitor's; its writes land in the running state, so a later
  // fast-path reader sees them without any engine run.
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {wr(7, 1)}));
  c.feed(withEnd(txUnit(0, 20, {wr(7, 2)}), 30));
  c.feed(txUnit(1, 21, {rd(7, 1), wr(9, 5)}));  // stale read, certified
  c.feed(txUnit(2, 40, {rd(7, 2), rd(9, 5)}));  // fast: writes landed
  c.finish();
  const StreamStats& s = c.stats();
  EXPECT_EQ(s.violations, 0u);
  EXPECT_EQ(s.rechecks, 0u) << "insertion missed: engine ran";
  EXPECT_EQ(s.certifiedUnits, 1u);
  EXPECT_EQ(s.fastPathUnits, 3u);
  EXPECT_EQ(s.escalatedUnits, 0u);
}

TEST(CertifierStream, PathBucketsPartitionUnitsChecked) {
  // A run that exercises all four paths: fast writes, a certified stale
  // read, an escalated conviction, and units discarded by a drop resync.
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {wr(7, 1)}));
  c.feed(withEnd(txUnit(0, 20, {wr(7, 2)}), 25));
  c.feed(txUnit(1, 21, {rd(7, 1)}));  // certified
  c.feed(txUnit(1, 30, {rd(7, 1)}));  // escalates
  for (std::uint64_t i = 0; i < 8; ++i) {
    c.feed(txUnit(0, 40 + 10 * i, {wr(9, 5)}));
  }
  c.feed(txUnit(1, 130, {rd(9, 77)}));  // buffers, then discarded:
  c.noteDrops();                        // drop resync while undecided
  c.feed(txUnit(0, 140, {wr(9, 6)}));
  c.finish();
  const StreamStats& s = c.stats();
  EXPECT_EQ(
      s.fastPathUnits + s.certifiedUnits + s.escalatedUnits + s.discardedUnits,
      s.unitsChecked)
      << "fast=" << s.fastPathUnits << " cert=" << s.certifiedUnits
      << " esc=" << s.escalatedUnits << " disc=" << s.discardedUnits;
  EXPECT_GE(s.certifiedUnits, 1u);
  EXPECT_GE(s.escalatedUnits, 1u);
  EXPECT_GE(s.discardedUnits, 1u);
}

TEST(CertifierStream, NonIdentityModelDisablesTheCertifier) {
  // Junk-SC's τ rewrites values, so the certified history would not be the
  // checked one: the constructor must refuse to build the automaton even
  // with certify=true, and every fast-path miss goes to the engine.
  StreamOptions so = smallOpts();
  so.model = &junkScModel();
  StreamChecker c(so);
  c.feed(txUnit(0, 10, {wr(7, 1)}));
  c.feed(withEnd(txUnit(0, 20, {wr(7, 2)}), 25));
  c.feed(txUnit(1, 21, {rd(7, 1)}));
  c.finish();
  EXPECT_EQ(c.stats().certifierAttempts, 0u);
  EXPECT_EQ(c.stats().certifiedUnits, 0u);
}

TEST(CertifierStream, DisabledCertifierMatchesOnTheBenignScenario) {
  // certify=false on the old-snapshot scenario: same verdict, reached by
  // escalation instead (the overhead the certifier exists to remove).
  StreamOptions so = smallOpts();
  so.certify = false;
  StreamChecker c(so);
  c.feed(txUnit(0, 10, {wr(7, 1)}));
  c.feed(withEnd(txUnit(0, 20, {wr(7, 2)}), 25));
  c.feed(txUnit(1, 21, {rd(7, 1)}));
  c.finish();
  EXPECT_EQ(c.stats().violations, 0u);
  EXPECT_GE(c.stats().rechecks, 1u);
  EXPECT_EQ(c.stats().certifierAttempts, 0u);
}

// --------------------------------------------- corpus-wide differential

History loadHistoryFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto r = litmus::parseHistory(buf.str());
  EXPECT_TRUE(r) << path << ": " << r.error;
  return *r.history;
}

/// History → unit stream adapter (the same reduction the sharded-corpus
/// regression uses): each transaction or non-transactional access becomes
/// one StreamUnit whose start/end tickets are its first/last history
/// positions, so real-time precedence survives as ticket order.  False
/// when the history uses commands richer than register reads/writes.
bool unitsFromHistory(const History& h, std::vector<StreamUnit>& out) {
  HistoryAnalysis a(h);
  if (!a.wellFormed()) return false;
  for (const OpInstance& op : h) {
    if (op.isCommand() && op.cmd.kind != CmdKind::kRead &&
        op.cmd.kind != CmdKind::kWrite) {
      return false;
    }
  }
  const auto ticketOf = [](std::size_t pos) {
    return static_cast<std::uint64_t>(pos) + 1;
  };
  std::vector<bool> inTx(h.size(), false);
  for (const Transaction& t : a.transactions()) {
    StreamUnit u;
    u.kind = t.aborted ? StreamUnit::Kind::kAbortedTx
                       : StreamUnit::Kind::kCommittedTx;
    u.pid = t.pid;
    u.epoch = ticketOf(t.firstPos());
    for (std::size_t pos : t.positions) {
      inTx[pos] = true;
      const OpInstance& op = h[pos];
      if (op.isStart()) {
        u.events.push_back({u.epoch, kNoObject, EventKind::kTxStart, 0});
      } else if (op.isCommit() || op.isAbort()) {
        u.events.push_back({ticketOf(pos), kNoObject,
                            op.isAbort() ? EventKind::kTxAbort
                                         : EventKind::kTxCommit,
                            0});
      } else {
        u.events.push_back({u.epoch, op.obj,
                            op.cmd.kind == CmdKind::kRead
                                ? EventKind::kTxRead
                                : EventKind::kTxWrite,
                            op.cmd.value});
      }
    }
    if (!t.completed()) {
      u.kind = StreamUnit::Kind::kAbortedTx;
      u.events.push_back({ticketOf(t.lastPos()), kNoObject,
                          EventKind::kTxAbort, 0});
    }
    out.push_back(std::move(u));
  }
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    if (inTx[pos] || !h[pos].isCommand()) continue;
    StreamUnit u;
    u.kind = StreamUnit::Kind::kNonTx;
    u.pid = h[pos].pid;
    u.epoch = ticketOf(pos);
    u.events.push_back({u.epoch, h[pos].obj,
                        h[pos].cmd.kind == CmdKind::kRead
                            ? EventKind::kNtRead
                            : EventKind::kNtWrite,
                        h[pos].cmd.value});
    out.push_back(std::move(u));
  }
  std::sort(out.begin(), out.end(),
            [](const StreamUnit& a, const StreamUnit& b) {
              return a.epoch < b.epoch;
            });
  return true;
}

struct ReplayResult {
  bool convicted = false;
  StreamStats stats;
};

ReplayResult replay(const std::vector<StreamUnit>& units, bool certify,
                    ConditionKind condition) {
  StreamOptions so = smallOpts();
  so.certify = certify;
  so.condition = condition;
  StreamChecker c(so);
  for (const StreamUnit& u : units) c.feed(u);
  c.finish();
  return {!c.violations().empty(), c.stats()};
}

TEST(CertifierCorpus, DifferentialVerdictsMatchOnEveryHistoryFile) {
  // Every shipped .hist (including regressions/) that adapts to register
  // units, replayed certifier-on vs certifier-off under both conditions
  // the monitor dispatches most: the verdicts must be identical, file by
  // file.  This is the accept-only contract made empirical.
  const ConditionKind kConditions[] = {
      ConditionKind::kParametrizedOpacity,
      ConditionKind::kStrictSerializability,
  };
  std::size_t adapted = 0;
  bool sawRegression = false;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           JUNGLE_HISTORIES_DIR)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".hist") {
      continue;
    }
    const History h = loadHistoryFile(entry.path());
    std::vector<StreamUnit> units;
    if (!unitsFromHistory(h, units)) continue;
    ++adapted;
    if (entry.path().filename() == "ssn_ro_realtime.hist") {
      sawRegression = true;
    }
    for (ConditionKind cond : kConditions) {
      const ReplayResult on = replay(units, true, cond);
      const ReplayResult off = replay(units, false, cond);
      EXPECT_EQ(on.convicted, off.convicted)
          << entry.path().filename() << " under " << conditionKindName(cond);
      EXPECT_EQ(on.stats.violations, off.stats.violations)
          << entry.path().filename() << " under " << conditionKindName(cond);
      // Certifier-on must never report MORE engine runs than off: the
      // third tier only ever removes escalations.
      EXPECT_LE(on.stats.rechecks, off.stats.rechecks)
          << entry.path().filename() << " under " << conditionKindName(cond);
    }
  }
  EXPECT_GE(adapted, 5u) << "corpus differential lost its histories";
  EXPECT_TRUE(sawRegression)
      << "regressions/ssn_ro_realtime.hist missing from the sweep";
}

TEST(CertifierCorpus, StoreBufferIsPinnedAsAMustEscalateHistory) {
  // Store buffering's cycle cannot be expressed as any single-unit
  // certification — the certifier must refuse and the engine must run
  // (and convict), proving the fallback edge stays exercised forever.
  const History h = loadHistoryFile(
      std::filesystem::path(JUNGLE_HISTORIES_DIR) / "store_buffer.hist");
  std::vector<StreamUnit> units;
  ASSERT_TRUE(unitsFromHistory(h, units));
  const ReplayResult on =
      replay(units, true, ConditionKind::kParametrizedOpacity);
  EXPECT_TRUE(on.convicted);
  EXPECT_GE(on.stats.rechecks, 1u)
      << "store_buffer no longer reaches the escalation tier";
  EXPECT_GE(on.stats.escalatedUnits, 1u);
}

// ------------------------------------------------------------ end-to-end

TEST(CertifierEndToEnd, CleanRunCertifiesWithHonestBuckets) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kTl2Weak, 16));
  auto tm = makeNativeRuntime(TmKind::kTl2Weak, mem, 16, 4);
  TmMonitor mon(*tm, 4);  // certifier on by default
  WorkloadOptions w;
  w.threads = 4;
  w.numVars = 16;
  w.opsPerThread = 1500;
  w.seed = 99;
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();
  EXPECT_TRUE(mon.ok()) << mon.violations()[0].description;
  const StreamStats& s = mon.stats().stream;
  EXPECT_EQ(
      s.fastPathUnits + s.certifiedUnits + s.escalatedUnits + s.discardedUnits,
      s.unitsChecked);
}

TEST(CertifierEndToEnd, InjectedBugConvictsEveryTmKindWithCertifierOn) {
  // The conviction e2e gate, per TM kind, with the certifier enabled: the
  // accept-only tier must never absorb the planted corrupt read.  Paced,
  // as in the original self-test, so conviction is honestly possible.
  for (TmKind kind : allTmKinds()) {
    NativeMemory mem(runtimeMemoryWords(kind, 16));
    auto tm = makeNativeRuntime(kind, mem, 16, 4);
    MonitorOptions mo;
    mo.capture.injectBug = InjectedBug::kCorruptTxRead;
    ASSERT_TRUE(mo.certifier);
    TmMonitor mon(*tm, 4, mo);
    WorkloadOptions w;
    w.threads = 4;
    w.numVars = 16;
    w.opsPerThread = 1200;
    w.seed = 7;
    w.pace = std::chrono::microseconds(5);
    runMonitoredWorkload(mon.runtime(), w);
    mon.stop();
    EXPECT_FALSE(mon.ok()) << tmKindName(kind)
                           << ": certifier absorbed the injected bug";
  }
}

}  // namespace
}  // namespace jungle::monitor
