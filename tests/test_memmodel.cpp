// Tests for the memory-model framework (§3.1–3.2): required views,
// classification, the τ transformation, and the per-model ordering rules.
#include <gtest/gtest.h>

#include <algorithm>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"

namespace jungle {
namespace {

bool hasPair(const std::vector<std::pair<OpId, OpId>>& pairs, OpId a,
             OpId b) {
  return std::find(pairs.begin(), pairs.end(), std::make_pair(a, b)) !=
         pairs.end();
}

// Two non-transactional ops of one process, different objects.
History twoOps(Command first, Command second) {
  HistoryBuilder b;
  b.cmd(0, 0, std::move(first), 1);
  b.cmd(0, 1, std::move(second), 2);
  return b.build();
}

// --------------------------------------------------- declared vs probed

class ClassificationTest
    : public ::testing::TestWithParam<const MemoryModel*> {};

TEST_P(ClassificationTest, DeclaredMatchesBehavior) {
  const MemoryModel& m = *GetParam();
  const Classification want = m.classification();
  const Classification got = probeClassification(m);
  EXPECT_EQ(want.rr_independent, got.rr_independent) << m.name();
  EXPECT_EQ(want.rr_control, got.rr_control) << m.name();
  EXPECT_EQ(want.rr_data, got.rr_data) << m.name();
  EXPECT_EQ(want.rw_independent, got.rw_independent) << m.name();
  EXPECT_EQ(want.rw_control, got.rw_control) << m.name();
  EXPECT_EQ(want.rw_data, got.rw_data) << m.name();
  EXPECT_EQ(want.wr, got.wr) << m.name();
  EXPECT_EQ(want.ww, got.ww) << m.name();
}

TEST_P(ClassificationTest, SameObjectOrderAlwaysRequired) {
  const MemoryModel& m = *GetParam();
  HistoryBuilder b;
  b.write(0, 0, 1, 1);
  b.read(0, 0, 1, 2);
  History h = b.build();
  EXPECT_TRUE(m.requiresOrder(h, 0, 1)) << m.name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ClassificationTest,
                         ::testing::ValuesIn(allModels()),
                         [](const auto& info) {
                           std::string n = info.param->name();
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// --------------------------------------------------- §3.2's class table

TEST(ClassTable, MatchesThePaper) {
  // SC ∈ M^i_rr ∩ M^i_rw ∩ M_wr ∩ M_ww.
  auto sc = scModel().classification();
  EXPECT_TRUE(sc.rr_independent && sc.rw_independent && sc.wr && sc.ww);
  // TSO ∈ M^i_rr ∩ M^i_rw ∩ M_ww, TSO ∉ M_wr.
  auto tso = tsoModel().classification();
  EXPECT_TRUE(tso.rr_independent && tso.rw_independent && tso.ww);
  EXPECT_FALSE(tso.wr);
  // PSO ∈ M^i_rr ∩ M^i_rw, PSO ∉ M_ww ∪ M_wr.
  auto pso = psoModel().classification();
  EXPECT_TRUE(pso.rr_independent && pso.rw_independent);
  EXPECT_FALSE(pso.ww || pso.wr);
  // RMO ∈ M^d_rr ∩ M_rw, RMO ∉ M_ww ∪ M_wr, RMO ∉ M^i_rr, RMO ∉ M^i_rw.
  auto rmo = rmoModel().classification();
  EXPECT_TRUE(rmo.rr_data);
  EXPECT_TRUE(rmo.inMrw());
  EXPECT_FALSE(rmo.ww || rmo.wr);
  EXPECT_FALSE(rmo.rr_independent);
  EXPECT_FALSE(rmo.rw_independent);
  // Alpha ∈ M_rw, Alpha ∉ M_rr ∪ M_wr ∪ M_ww.
  auto alpha = alphaModel().classification();
  EXPECT_TRUE(alpha.inMrw());
  EXPECT_FALSE(alpha.inMrr() || alpha.wr || alpha.ww);
  // IA-32 classifies like TSO.
  auto ia32 = ia32Model().classification();
  EXPECT_EQ(ia32.wr, tso.wr);
  EXPECT_EQ(ia32.ww, tso.ww);
  EXPECT_FALSE(ia32Model().identicalViews());
  // The idealized model is outside every class (Theorem 3's hypothesis).
  EXPECT_FALSE(idealizedModel().classification().restrictive());
}

// --------------------------------------------------- TSO specifics

TEST(Tso, ForwardedReadMayReorderWithLaterRead) {
  // p0: wr x 1; rd x 1 (forwarded); rd y 0 — the forwarded read may pass
  // the later read of y.
  HistoryBuilder b;
  b.write(0, 0, 1, 1);
  b.read(0, 0, 1, 2);
  b.read(0, 1, 0, 3);
  History h = b.build();
  EXPECT_FALSE(tsoModel().requiresOrder(h, 1, 2));
}

TEST(Tso, NonForwardedReadStaysOrderedWithLaterRead) {
  // The read's value does not match the process's last write to x.
  HistoryBuilder b;
  b.write(0, 0, 1, 1);
  b.write(1, 0, 2, 2);
  b.read(0, 0, 2, 3);  // value came from p1, not the store buffer
  b.read(0, 1, 0, 4);
  History h = b.build();
  EXPECT_TRUE(tsoModel().requiresOrder(h, 2, 3));
}

TEST(Tso, WriteReadToSameObjectOrdered) {
  HistoryBuilder b;
  b.write(0, 0, 1, 1);
  b.read(0, 0, 1, 2);
  History h = b.build();
  EXPECT_TRUE(tsoModel().requiresOrder(h, 0, 1));
}

// --------------------------------------------------- RMO/Alpha dependence

TEST(Rmo, DataDependentReadOrdered) {
  History h = twoOps(cmdRead(0), cmdDdRead(0, {1}));
  EXPECT_TRUE(rmoModel().requiresOrder(h, 0, 1));
  EXPECT_FALSE(alphaModel().requiresOrder(h, 0, 1));
}

TEST(Rmo, ControlDependentReadMayReorder) {
  History h = twoOps(cmdRead(0), cmdCdRead(0, {1}));
  EXPECT_FALSE(rmoModel().requiresOrder(h, 0, 1));
}

TEST(Rmo, DependenceOnADifferentOpDoesNotOrder) {
  // The dd-read depends on op 5, not on op 1: no required order vs op 1.
  HistoryBuilder b;
  b.read(0, 2, 0, 5);
  b.read(0, 0, 0, 1);
  b.cmd(0, 1, cmdDdRead(0, {5}), 2);
  History h = b.build();
  EXPECT_FALSE(rmoModel().requiresOrder(h, 1, 2));
}

TEST(Alpha, DependentWriteOrdered) {
  History hd = twoOps(cmdRead(0), cmdDdWrite(1, {1}));
  EXPECT_TRUE(alphaModel().requiresOrder(hd, 0, 1));
  History hc = twoOps(cmdRead(0), cmdCdWrite(1, {1}));
  EXPECT_TRUE(alphaModel().requiresOrder(hc, 0, 1));
  History hi = twoOps(cmdRead(0), cmdWrite(1));
  EXPECT_FALSE(alphaModel().requiresOrder(hi, 0, 1));
}

// --------------------------------------------------- Junk-SC transform

TEST(JunkSc, TransformInsertsHavocBeforeEveryWrite) {
  History h = litmus::fig2bHistory(0, 0);  // two writes, two reads
  History t = junkScModel().transform(h);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].cmd.kind, CmdKind::kHavoc);
  EXPECT_EQ(t[1].cmd.kind, CmdKind::kWrite);
  EXPECT_EQ(t[0].obj, t[1].obj);
  EXPECT_EQ(t[0].pid, t[1].pid);
}

TEST(JunkSc, TransformAssignsFreshUniqueIds) {
  History h = litmus::fig2bHistory(0, 0);
  History t = junkScModel().transform(h);
  // History's constructor CHECKs uniqueness; verify originals survive.
  for (const OpInstance& inst : h) EXPECT_TRUE(t.hasOp(inst.id));
}

TEST(JunkSc, TransformPreservesWellFormedness) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  History t = junkScModel().transform(b.build());
  HistoryAnalysis a(t);
  EXPECT_TRUE(a.wellFormed());
  // The inserted havoc lands inside the transaction.
  ASSERT_EQ(a.transactions().size(), 1u);
  EXPECT_EQ(a.transactions()[0].positions.size(), 4u);
}

TEST(OtherModels, TransformIsIdentity) {
  History h = litmus::fig2bHistory(1, 0);
  for (const MemoryModel* m : allModels()) {
    if (m == &junkScModel()) continue;
    EXPECT_EQ(m->transform(h).size(), h.size()) << m->name();
  }
}

// --------------------------------------------------- minimal views

TEST(RequiredView, ScOrdersAllSameProcessNtPairs) {
  History h = litmus::fig2bHistory(1, 0);
  HistoryAnalysis a(h);
  auto pairs = requiredViewPairs(scModel(), h, a);
  EXPECT_TRUE(hasPair(pairs, 1, 3));  // p0's two writes
  EXPECT_TRUE(hasPair(pairs, 2, 4));  // p1's two reads
  EXPECT_FALSE(hasPair(pairs, 1, 2));  // cross-process: never required
}

TEST(RequiredView, PsoRelaxesTheWrites) {
  History h = litmus::fig2bHistory(1, 0);
  HistoryAnalysis a(h);
  auto pairs = requiredViewPairs(psoModel(), h, a);
  EXPECT_FALSE(hasPair(pairs, 1, 3));  // W→W to different objects relaxed
  EXPECT_TRUE(hasPair(pairs, 2, 4));   // R→R still ordered
}

TEST(RequiredView, RmoRelaxesEverythingHere) {
  History h = litmus::fig2bHistory(1, 0);
  HistoryAnalysis a(h);
  EXPECT_TRUE(requiredViewPairs(rmoModel(), h, a).empty());
}

TEST(RequiredView, ViewsNeverOrderTransactionalOps) {
  History h = litmus::fig1History(1, 1);
  HistoryAnalysis a(h);
  auto pairs = requiredViewPairs(scModel(), h, a);
  for (const auto& [i, j] : pairs) {
    EXPECT_FALSE(a.isTransactional(h.positionOf(i)));
    EXPECT_FALSE(a.isTransactional(h.positionOf(j)));
  }
}

TEST(RequiredView, TransitivityIsApplied) {
  // p0: rd a; rd b; rd c under SC — closure must contain (1,3).
  HistoryBuilder b;
  b.read(0, 0, 0, 1).read(0, 1, 0, 2).read(0, 2, 0, 3);
  History h = b.build();
  HistoryAnalysis a(h);
  auto pairs = requiredViewPairs(scModel(), h, a);
  EXPECT_TRUE(hasPair(pairs, 1, 3));
}

}  // namespace
}  // namespace jungle
