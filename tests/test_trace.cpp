// Tests for the instruction/trace layer (§4) and the trace → history
// correspondence of Figure 4.
#include <gtest/gtest.h>

#include "sim/trace_history.hpp"

namespace jungle {
namespace {

// ------------------------------------------------------------ structure

TEST(Trace, BuilderAndProjection) {
  TraceBuilder b;
  b.ntWrite(1, 1, 0, 0, 5);
  b.ntRead(2, 2, 0, 0, 5);
  Trace r = b.build();
  EXPECT_EQ(r.size(), 6u);
  EXPECT_EQ(r.projectProcess(1).size(), 3u);
  EXPECT_EQ(r.projectProcess(2).size(), 3u);
  EXPECT_EQ(r.projectProcess(9).size(), 0u);
}

TEST(Trace, WellFormedAcceptsInterleavedProcesses) {
  TraceBuilder b;
  b.invoke(1, 1, OpType::kCommand, 0, cmdWrite(1));
  b.invoke(2, 2, OpType::kCommand, 0, cmdRead(0));
  b.store(1, 1, 0, 1);
  b.load(2, 2, 0, 0);
  b.respond(2, 2, OpType::kCommand, 0, cmdRead(0));
  b.respond(1, 1, OpType::kCommand, 0, cmdWrite(1));
  EXPECT_TRUE(traceWellFormed(b.build()));
}

TEST(Trace, WellFormedRejectsNestedInvokes) {
  TraceBuilder b;
  b.invoke(1, 1, OpType::kCommand, 0, cmdRead(0));
  b.invoke(1, 2, OpType::kCommand, 0, cmdRead(0));
  std::string why;
  EXPECT_FALSE(traceWellFormed(b.build(), &why));
  EXPECT_NE(why.find("invoke"), std::string::npos);
}

TEST(Trace, WellFormedRejectsStrayInstructions) {
  TraceBuilder b;
  b.load(1, 1, 0, 0);
  EXPECT_FALSE(traceWellFormed(b.build()));
}

TEST(Trace, WellFormedAllowsTrailingIncompleteOp) {
  TraceBuilder b;
  b.invoke(1, 1, OpType::kCommand, 0, cmdRead(0));
  b.load(1, 1, 0, 0);
  EXPECT_TRUE(traceWellFormed(b.build()));
}

// --------------------------------------------------- machine consistency

TEST(Trace, MachineConsistencyAcceptsFaithfulReplay) {
  TraceBuilder b;
  b.ntWrite(1, 1, 0, 0, 5);
  b.ntRead(2, 2, 0, 0, 5);
  EXPECT_TRUE(traceMachineConsistent(b.build()));
}

TEST(Trace, MachineConsistencyRejectsStaleLoad) {
  TraceBuilder b;
  b.ntWrite(1, 1, 0, 0, 5);
  b.ntRead(2, 2, 0, 0, 3);  // memory holds 5
  std::string why;
  EXPECT_FALSE(traceMachineConsistent(b.build(), &why));
  EXPECT_NE(why.find("stale"), std::string::npos);
}

TEST(Trace, MachineConsistencyChecksCasOutcome) {
  {
    TraceBuilder b;
    b.invoke(1, 1, OpType::kStart);
    b.cas(1, 1, 0, 0, 7, true);
    b.respond(1, 1, OpType::kStart);
    EXPECT_TRUE(traceMachineConsistent(b.build()));
  }
  {
    TraceBuilder b;  // claims success but expected value is wrong
    b.invoke(1, 1, OpType::kStart);
    b.cas(1, 1, 0, 9, 7, true);
    b.respond(1, 1, OpType::kStart);
    EXPECT_FALSE(traceMachineConsistent(b.build()));
  }
  {
    TraceBuilder b;  // failed CAS must not write
    b.invoke(1, 1, OpType::kStart);
    b.cas(1, 1, 0, 9, 7, false);
    b.respond(1, 1, OpType::kStart);
    b.invoke(1, 2, OpType::kCommand, 0, cmdRead(0));
    b.load(1, 2, 0, 0);
    b.respond(1, 2, OpType::kCommand, 0, cmdRead(0));
    EXPECT_TRUE(traceMachineConsistent(b.build()));
  }
}

// --------------------------------------------------------- correspondence

// Figure 4's situation: two operations overlap, so both orders correspond.
Trace overlappingOpsTrace() {
  TraceBuilder b;
  b.invoke(1, 1, OpType::kCommand, 0, cmdWrite(1));   // p1 wr x 1 …
  b.invoke(2, 2, OpType::kCommand, 0, cmdRead(0));    // p2 rd x overlaps
  b.load(2, 2, 0, 0);
  b.respond(2, 2, OpType::kCommand, 0, cmdRead(0));
  b.store(1, 1, 0, 1);
  b.respond(1, 1, OpType::kCommand, 0, cmdWrite(1));
  return b.build();
}

TEST(Correspondence, OverlappingOpsYieldBothOrders) {
  int count = 0;
  auto res = forEachCorrespondingHistory(overlappingOpsTrace(),
                                         [&](const History& h) {
                                           EXPECT_EQ(h.size(), 2u);
                                           ++count;
                                           return false;
                                         });
  EXPECT_FALSE(res.satisfied);
  EXPECT_FALSE(res.cappedOut);
  EXPECT_EQ(count, 2);
}

TEST(Correspondence, SeparatedOpsYieldOneOrder) {
  TraceBuilder b;
  b.ntWrite(1, 1, 0, 0, 5);
  b.ntRead(2, 2, 0, 0, 5);
  int count = 0;
  forEachCorrespondingHistory(b.build(), [&](const History& h) {
    EXPECT_EQ(h[0].id, 1u);
    EXPECT_EQ(h[1].id, 2u);
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

TEST(Correspondence, EarlyExitStopsEnumeration) {
  int count = 0;
  auto res = forEachCorrespondingHistory(overlappingOpsTrace(),
                                         [&](const History&) {
                                           ++count;
                                           return true;
                                         });
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(count, 1);
}

TEST(Correspondence, RespectsResponseBeforeInvokeOrderOnly) {
  // Three ops: A [0..1], B [2..3], C overlapping B: A<B, A<C forced; B,C
  // free: 2 extensions.
  TraceBuilder b;
  b.ntWrite(1, 1, 0, 0, 1);                          // A
  b.invoke(1, 2, OpType::kCommand, 1, cmdWrite(2));  // B
  b.invoke(2, 3, OpType::kCommand, 0, cmdRead(1));   // C
  b.load(2, 3, 0, 1);
  b.respond(2, 3, OpType::kCommand, 0, cmdRead(1));
  b.store(1, 2, 1, 2);
  b.respond(1, 2, OpType::kCommand, 1, cmdWrite(2));
  int count = 0;
  forEachCorrespondingHistory(b.build(), [&](const History& h) {
    EXPECT_EQ(h[0].id, 1u);
    ++count;
    return false;
  });
  EXPECT_EQ(count, 2);
}

TEST(Correspondence, CanonicalUsesPointsWhenPresent) {
  // Op 1 invokes first but its point is late; op 2 is nested inside with
  // an early point: canonical order = (2, 1).
  TraceBuilder b;
  b.invoke(1, 1, OpType::kCommand, 0, cmdWrite(1));
  b.invoke(2, 2, OpType::kCommand, 1, cmdWrite(2));
  b.point(2, 2);
  b.respond(2, 2, OpType::kCommand, 1, cmdWrite(2));
  b.store(1, 1, 0, 1);
  b.point(1, 1);
  b.respond(1, 1, OpType::kCommand, 0, cmdWrite(1));
  History h = canonicalHistory(b.build());
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].id, 2u);
  EXPECT_EQ(h[1].id, 1u);
}

TEST(Correspondence, ReadValueComesFromResponse) {
  // The invoke carries a placeholder 0; the respond carries the real value.
  TraceBuilder b;
  b.invoke(1, 1, OpType::kCommand, 0, cmdRead(0));
  b.load(1, 1, 0, 0);
  b.respond(1, 1, OpType::kCommand, 0, cmdRead(42));
  History h = canonicalHistory(b.build());
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].cmd.value, 42u);
}

TEST(Correspondence, AbortRespondMorphsTheOperation) {
  // A transactional read that fails validation responds as the abort.
  TraceBuilder b;
  b.invoke(1, 1, OpType::kStart);
  b.respond(1, 1, OpType::kStart);
  b.invoke(1, 2, OpType::kCommand, 0, cmdRead(0));
  b.load(1, 2, 0, 0);
  b.respond(1, 2, OpType::kAbort);
  History h = canonicalHistory(b.build());
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(h[1].isAbort());
  HistoryAnalysis a(h);
  EXPECT_TRUE(a.wellFormed());
  ASSERT_EQ(a.transactions().size(), 1u);
  EXPECT_TRUE(a.transactions()[0].aborted);
}

}  // namespace
}  // namespace jungle
