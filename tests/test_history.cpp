// Unit tests for histories, transactions, well-formedness, and the
// real-time order ≺h (§2), including the paper's Figure 3 example.
#include <gtest/gtest.h>

#include <algorithm>

#include "history/history.hpp"

namespace jungle {
namespace {

bool hasPair(const std::vector<std::pair<OpId, OpId>>& pairs, OpId a,
             OpId b) {
  return std::find(pairs.begin(), pairs.end(), std::make_pair(a, b)) !=
         pairs.end();
}

History fig3(Word v, Word vprime) {
  HistoryBuilder b;
  b.write(1, 0, 1, 1);   // ((wr, x, 1), p1, 1)
  b.start(1, 2);         // ((start), p1, 2)
  b.read(2, 1, 1, 3);    // ((rd, y, 1), p2, 3)
  b.write(1, 1, 1, 4);   // ((wr, y, 1), p1, 4)
  b.commit(1, 5);        // ((commit), p1, 5)
  b.read(2, 0, v, 6);    // ((rd, x, v), p2, 6)
  b.start(3, 7);
  b.commit(3, 8);
  b.read(3, 0, vprime, 9);
  return b.build();
}

// ---------------------------------------------------------------- builder

TEST(HistoryBuilder, AutoAssignsSequentialIds) {
  HistoryBuilder b;
  b.write(0, 0, 1).read(0, 0, 1).start(1).commit(1);
  History h = b.build();
  ASSERT_EQ(h.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h[i].id, i + 1);
}

TEST(HistoryBuilder, ExplicitIdsBumpTheCounter) {
  HistoryBuilder b;
  b.write(0, 0, 1, /*id=*/10).read(0, 0, 1);  // auto id must be 11
  History h = b.build();
  EXPECT_EQ(h[1].id, 11u);
}

TEST(History, DuplicateIdsAreRejected) {
  std::vector<OpInstance> ops{opWrite(0, 0, 1, 5), opRead(0, 0, 1, 5)};
  EXPECT_DEATH(History{std::move(ops)}, "duplicate");
}

TEST(History, PositionOfAndLookup) {
  History h = fig3(1, 1);
  EXPECT_EQ(h.positionOf(3), 2u);
  EXPECT_EQ(h.op(4).obj, 1u);
  EXPECT_TRUE(h.hasOp(9));
  EXPECT_FALSE(h.hasOp(99));
}

TEST(History, ProjectProcessKeepsOrder) {
  History h = fig3(0, 1);
  History p1 = h.projectProcess(1);
  ASSERT_EQ(p1.size(), 4u);
  EXPECT_EQ(p1[0].id, 1u);
  EXPECT_EQ(p1[1].id, 2u);
  EXPECT_EQ(p1[2].id, 4u);
  EXPECT_EQ(p1[3].id, 5u);
}

TEST(History, ProcessesAndObjects) {
  History h = fig3(0, 1);
  EXPECT_EQ(h.processes(), (std::vector<ProcessId>{1, 2, 3}));
  auto objs = h.objects();
  std::sort(objs.begin(), objs.end());
  EXPECT_EQ(objs, (std::vector<ObjectId>{0, 1}));
}

// ------------------------------------------------------- well-formedness

TEST(WellFormedness, Fig3IsWellFormed) {
  HistoryAnalysis a(fig3(1, 1));
  EXPECT_TRUE(a.wellFormed());
}

TEST(WellFormedness, NestedStartIsIllFormed) {
  HistoryBuilder b;
  b.start(0).start(0);
  HistoryAnalysis a(b.build());
  EXPECT_FALSE(a.wellFormed());
  EXPECT_NE(a.wellFormednessError().find("nested"), std::string::npos);
}

TEST(WellFormedness, UnmatchedCommitIsIllFormed) {
  HistoryBuilder b;
  b.write(0, 0, 1).commit(0);
  HistoryAnalysis a(b.build());
  EXPECT_FALSE(a.wellFormed());
  EXPECT_NE(a.wellFormednessError().find("unmatched"), std::string::npos);
}

TEST(WellFormedness, UnmatchedAbortIsIllFormed) {
  HistoryBuilder b;
  b.abort(0);
  HistoryAnalysis a(b.build());
  EXPECT_FALSE(a.wellFormed());
}

TEST(WellFormedness, StartOfAnotherProcessDoesNotNest) {
  HistoryBuilder b;
  b.start(0).start(1).commit(1).commit(0);
  HistoryAnalysis a(b.build());
  EXPECT_TRUE(a.wellFormed());
  EXPECT_EQ(a.transactions().size(), 2u);
}

TEST(WellFormedness, DependenceMustPrecedeInSameProcess) {
  {
    HistoryBuilder b;
    b.read(0, 0, 0, 1);
    b.cmd(0, 1, cmdDdRead(0, {1}), 2);
    EXPECT_TRUE(HistoryAnalysis(b.build()).wellFormed());
  }
  {
    HistoryBuilder b;  // dependency on a later op
    b.cmd(0, 1, cmdDdRead(0, {2}), 1);
    b.read(0, 0, 0, 2);
    EXPECT_FALSE(HistoryAnalysis(b.build()).wellFormed());
  }
  {
    HistoryBuilder b;  // dependency across processes
    b.read(1, 0, 0, 1);
    b.cmd(0, 1, cmdDdRead(0, {1}), 2);
    EXPECT_FALSE(HistoryAnalysis(b.build()).wellFormed());
  }
}

// ----------------------------------------------------------- transactions

TEST(Transactions, Fig3Structure) {
  History h = fig3(1, 1);
  HistoryAnalysis a(h);
  ASSERT_EQ(a.transactions().size(), 2u);
  const Transaction& t1 = a.transactions()[0];
  EXPECT_EQ(t1.pid, 1u);
  EXPECT_TRUE(t1.committed);
  EXPECT_EQ(t1.positions, (std::vector<std::size_t>{1, 3, 4}));
  const Transaction& t3 = a.transactions()[1];
  EXPECT_EQ(t3.pid, 3u);
  EXPECT_TRUE(t3.committed);
}

TEST(Transactions, LiveTransactionIsNotCompleted) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1);
  HistoryAnalysis a(b.build());
  ASSERT_EQ(a.transactions().size(), 1u);
  EXPECT_FALSE(a.transactions()[0].completed());
}

TEST(Transactions, AbortedTransaction) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).abort(0);
  HistoryAnalysis a(b.build());
  ASSERT_EQ(a.transactions().size(), 1u);
  EXPECT_TRUE(a.transactions()[0].aborted);
  EXPECT_TRUE(a.transactions()[0].completed());
  EXPECT_FALSE(a.transactions()[0].committed);
}

TEST(Transactions, TransactionOfClassifiesPositions) {
  History h = fig3(1, 1);
  HistoryAnalysis a(h);
  EXPECT_FALSE(a.transactionOf(0).has_value());  // op 1: non-transactional
  EXPECT_TRUE(a.transactionOf(1).has_value());   // op 2: start
  EXPECT_FALSE(a.transactionOf(2).has_value());  // op 3: p2, non-tx
  EXPECT_TRUE(a.isTransactional(4));
  EXPECT_FALSE(a.isTransactional(5));
}

// --------------------------------------------------------- real-time order

TEST(RealTimeOrder, Fig3MatchesThePaper) {
  History h = fig3(1, 1);
  HistoryAnalysis a(h);
  auto pairs = a.realTimePairs();
  // The paper: ≺h contains (1,2), (5,7), and (1,9)…
  EXPECT_TRUE(hasPair(pairs, 1, 2));
  EXPECT_TRUE(hasPair(pairs, 5, 7));
  EXPECT_TRUE(hasPair(pairs, 1, 9));  // via transitivity through both txns
  // …but not (1,6) or (6,9).
  EXPECT_FALSE(hasPair(pairs, 1, 6));
  EXPECT_FALSE(hasPair(pairs, 6, 9));
}

TEST(RealTimeOrder, NonTransactionalSameProcessOpsAreUnordered) {
  HistoryBuilder b;
  b.write(0, 0, 1).read(0, 1, 0);
  History h = b.build();
  HistoryAnalysis a(h);
  EXPECT_FALSE(a.realTimePrecedes(0, 1));
  EXPECT_FALSE(a.realTimePrecedes(1, 0));
}

TEST(RealTimeOrder, CompletedTransactionPrecedesLaterTransaction) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).read(1, 0, 1).commit(1);
  History h = b.build();
  HistoryAnalysis a(h);
  // Every op of T0 precedes every op of T1.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 3; j < 6; ++j)
      EXPECT_TRUE(a.realTimePrecedes(i, j)) << i << "," << j;
}

TEST(RealTimeOrder, OverlappingTransactionsAreUnordered) {
  HistoryBuilder b;
  b.start(0).start(1).write(0, 0, 1).commit(0).read(1, 0, 1).commit(1);
  History h = b.build();
  HistoryAnalysis a(h);
  EXPECT_FALSE(a.realTimePrecedes(0, 1));
  EXPECT_FALSE(a.realTimePrecedes(1, 0));
  // But the same-process clause still orders within each transaction.
  EXPECT_TRUE(a.realTimePrecedes(0, 2));
  EXPECT_TRUE(a.realTimePrecedes(1, 4));
}

TEST(RealTimeOrder, MixedClauseOrdersNtAroundOwnTransactions) {
  HistoryBuilder b;
  b.write(0, 0, 1);   // pos 0, nt
  b.start(0);         // pos 1
  b.commit(0);        // pos 2
  b.read(0, 0, 1);    // pos 3, nt
  History h = b.build();
  HistoryAnalysis a(h);
  EXPECT_TRUE(a.realTimePrecedes(0, 1));  // nt before own tx op
  EXPECT_TRUE(a.realTimePrecedes(2, 3));  // tx op before own later nt
  EXPECT_FALSE(a.realTimePrecedes(0, 3));  // both nt: unordered directly
}

TEST(RealTimeOrder, AbortedTransactionStillOrdersInRealTime) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).abort(0);
  b.start(1).read(1, 0, 0).commit(1);
  History h = b.build();
  HistoryAnalysis a(h);
  EXPECT_TRUE(a.realTimePrecedes(2, 3));  // completed (aborted) ≺ next tx
}

}  // namespace
}  // namespace jungle
