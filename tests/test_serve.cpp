// Tests for the sharded KV service (src/serve/): the SPSC command rings,
// key routing, epoch-batched execution semantics (get/put/rmw/txn),
// bounded retry-on-abort, graceful shutdown with zero lost acknowledged
// commands, the sampled-monitor duty cycle with blind-write resync, and
// the inject-bug end-to-end conviction self-test.
//
// Everything that can be deterministic is: single-shard single-client runs
// execute commands in submission order whatever the epoch boundaries, so
// whole result sequences are compared across runs.  Threaded tests assert
// schedule-independent invariants only (conservation, zero lost acks).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serve/command_queue.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"

namespace jungle::serve {
namespace {

Command get(ObjectId k) {
  Command c;
  c.kind = CmdKind::kGet;
  c.keys[0] = k;
  return c;
}

Command put(ObjectId k, Word v) {
  Command c;
  c.kind = CmdKind::kPut;
  c.keys[0] = k;
  c.vals[0] = v;
  return c;
}

Command rmw(ObjectId k, Word d) {
  Command c;
  c.kind = CmdKind::kRmw;
  c.keys[0] = k;
  c.vals[0] = d;
  return c;
}

Command txn(std::initializer_list<std::pair<ObjectId, Word>> kvs) {
  Command c;
  c.kind = CmdKind::kTxn;
  c.nKeys = 0;
  for (const auto& [k, v] : kvs) {
    c.keys[c.nKeys] = k;
    c.vals[c.nKeys] = v;
    ++c.nKeys;
  }
  return c;
}

Command txnx(std::initializer_list<std::pair<ObjectId, Word>> kvs) {
  Command c = txn(kvs);
  c.kind = CmdKind::kTxnX;
  return c;
}

/// Submits every command through `client` (spinning on backpressure) and
/// returns the acknowledgments of THIS batch in submission order per
/// (client, shard) lane — total order only when one shard is involved.
std::vector<CommandResult> runAll(JungleServe& sv, std::size_t client,
                                  const std::vector<Command>& cmds) {
  auto& cl = sv.client(client);
  std::vector<CommandResult> acks;
  for (const Command& c : cmds) {
    while (!cl.trySubmit(c)) {
      cl.drainResponses(acks);
    }
  }
  while (cl.acked() < cl.submitted()) {
    cl.drainResponses(acks);
  }
  return acks;
}

// ------------------------------------------------------------- SpscRing

TEST(SpscRing, FifoPushPopAndFullRefusal) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.tryPush(i));
  EXPECT_FALSE(ring.tryPush(99));  // full: refused, never dropped
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.tryPop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, BatchPopAcrossTheWrapBoundary) {
  SpscRing<int> ring(4);
  int out[8];
  // Advance head to the middle, then fill across the wrap.
  ASSERT_TRUE(ring.tryPush(0));
  ASSERT_TRUE(ring.tryPush(1));
  ASSERT_EQ(ring.tryPopBatch(out, 8), 2u);
  for (int i = 10; i < 14; ++i) ASSERT_TRUE(ring.tryPush(i));
  ASSERT_EQ(ring.tryPopBatch(out, 3), 3u);  // respects max
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[2], 12);
  ASSERT_EQ(ring.tryPopBatch(out, 8), 1u);
  EXPECT_EQ(out[0], 13);
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------------- routing

TEST(Routing, KeysStripeAcrossShardsByResidue) {
  ServeOptions o;
  o.shards = 4;
  o.clients = 1;
  o.numKeys = 64;
  JungleServe sv(o);
  for (ObjectId k = 0; k < 64; ++k) EXPECT_EQ(sv.shardOf(k), k % 4u);
  sv.shutdown();
}

TEST(RoutingDeathTest, CrossShardPlainTxnIsStillRejected) {
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  // kTxn keeps the hash-slot constraint — only kTxnX may span shards.
  // Keys 0 and 1 live on different shards: the constraint convicts the
  // submit before anything is enqueued.
  EXPECT_DEATH((void)sv.client(0).trySubmit(txn({{0, 1}, {1, 1}})),
               "check failed");
  sv.shutdown();
}

TEST(Routing, CrossShardTxnXRoutesToTheCoordinator) {
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  runAll(sv, 0, {put(0, 5), put(1, 7)});  // settled before the kTxnX
  const auto acks = runAll(sv, 0, {txnx({{0, 2}, {1, 3}})});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, CmdStatus::kOk);
  EXPECT_EQ(acks[0].value, 12u);  // 5 + 7 read atomically across shards
  EXPECT_EQ(sv.finalValue(0), 7u);
  EXPECT_EQ(sv.finalValue(1), 10u);
  const ServeStats& st = sv.stats();
  EXPECT_EQ(st.coordinator.txns, 1u);
  EXPECT_EQ(st.coordinator.committed, 1u);
  EXPECT_EQ(st.shards[0].xPrepares, 1u);
  EXPECT_EQ(st.shards[1].xPrepares, 1u);
  EXPECT_EQ(st.shards[0].xCommits, 1u);
  EXPECT_EQ(st.shards[1].xCommits, 1u);
}

TEST(Routing, SingleShardTxnXDemotesToTheFastLocalPath) {
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  // Keys 0, 2, 4 all live on shard 0: no 2PC — the command is demoted to
  // kTxn at submit and the coordinator never hears about it.
  const auto acks = runAll(sv, 0, {txnx({{0, 1}, {2, 1}, {4, 1}})});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, CmdStatus::kOk);
  EXPECT_EQ(acks[0].value, 0u);
  EXPECT_EQ(sv.finalValue(0), 1u);
  EXPECT_EQ(sv.finalValue(2), 1u);
  const ServeStats& st = sv.stats();
  EXPECT_EQ(st.coordinator.txns, 0u);
  EXPECT_EQ(st.coordinator.prepares, 0u);
  EXPECT_EQ(st.shards[0].txns, 1u);  // executed as a local kTxn
  EXPECT_EQ(st.shards[0].xPrepares, 0u);
}

TEST(Routing, CrossShardPctZeroKeepsTheCoordinatorIdle) {
  // At --cross-shard-pct 0 the generator draws no extra randomness and
  // emits no kTxnX, so behavior is byte-identical to the pre-coordinator
  // service: same deterministic final state (one client, per-shard FIFO,
  // disjoint keyspaces commute) and a completely idle coordinator.
  auto run = [] {
    ServeOptions o;
    o.shards = 2;
    o.clients = 1;
    o.numKeys = 64;
    JungleServe sv(o);
    LoadOptions lo;
    lo.opsPerClient = 4000;
    lo.readPct = 40;
    lo.rmwPct = 30;
    lo.txnPct = 20;
    lo.crossShardPct = 0;
    lo.zipfTheta = 0.9;
    lo.seed = 7;
    const LoadReport r = runLoad(sv, lo);
    sv.shutdown();
    EXPECT_EQ(r.acked, r.submitted);
    EXPECT_EQ(sv.stats().coordinator.txns, 0u);
    EXPECT_EQ(sv.stats().coordinator.prepares, 0u);
    std::vector<Word> vals;
    for (ObjectId k = 0; k < 64; ++k) vals.push_back(sv.finalValue(k));
    return vals;
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------- command semantics

TEST(Semantics, PutThenGetRoundTrips) {
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  const auto acks = runAll(sv, 0, {put(3, 42), get(3), get(11)});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 3u);
  // Keys 3 and 11 share shard 1, so all three acks are one FIFO lane.
  EXPECT_EQ(acks[0].value, 42u);
  EXPECT_EQ(acks[1].value, 42u);
  EXPECT_EQ(acks[2].value, 0u);
  for (const auto& a : acks) EXPECT_EQ(a.status, CmdStatus::kOk);
  EXPECT_EQ(sv.finalValue(3), 42u);
  EXPECT_EQ(sv.finalValue(11), 0u);
}

TEST(Semantics, RmwReturnsTheOldValueAndAccumulates) {
  ServeOptions o;
  o.shards = 1;
  o.clients = 1;
  o.numKeys = 8;
  JungleServe sv(o);
  const auto acks = runAll(sv, 0, {rmw(5, 10), rmw(5, 7), get(5)});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks[0].value, 0u);   // old value before the first add
  EXPECT_EQ(acks[1].value, 10u);  // old value before the second
  EXPECT_EQ(acks[2].value, 17u);
  EXPECT_EQ(sv.finalValue(5), 17u);
}

TEST(Semantics, MultiKeyTxnSumsItsReadsAtomically) {
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  // Keys 2, 4, 6 all live on shard 0 — a legal single-shard transaction.
  const auto acks = runAll(
      sv, 0, {put(2, 5), put(4, 6), txn({{2, 1}, {4, 1}, {6, 1}}), get(6)});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 4u);
  EXPECT_EQ(acks[2].value, 11u);  // 5 + 6 + 0 read in one transaction
  EXPECT_EQ(acks[3].value, 1u);
  EXPECT_EQ(sv.finalValue(2), 6u);
  EXPECT_EQ(sv.finalValue(4), 7u);
}

TEST(Semantics, SingleShardReplayIsDeterministic) {
  // One shard, one client: execution follows submission order whatever
  // the epoch boundaries land on, so two runs agree result-for-result —
  // including a third run with the sampled monitor attached (monitoring
  // must never change semantics).
  auto run = [](unsigned samplePermille) {
    ServeOptions o;
    o.shards = 1;
    o.clients = 1;
    o.numKeys = 32;
    o.kind = TmKind::kSnapshotIsolation;
    o.samplePermille = samplePermille;
    JungleServe sv(o);
    std::vector<Command> cmds;
    Rng rng(99);
    for (int i = 0; i < 400; ++i) {
      const auto k = static_cast<ObjectId>(rng.below(32));
      switch (rng.below(3)) {
        case 0:
          cmds.push_back(put(k, rng.below(100)));
          break;
        case 1:
          cmds.push_back(rmw(k, 1 + rng.below(9)));
          break;
        default:
          cmds.push_back(get(k));
          break;
      }
    }
    auto acks = runAll(sv, 0, cmds);
    sv.shutdown();
    return acks;
  };
  const auto a = run(0);
  const auto b = run(0);
  const auto c = run(1000);
  ASSERT_EQ(a.size(), 400u);
  ASSERT_EQ(b.size(), a.size());
  ASSERT_EQ(c.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(c[i].value, a[i].value) << "monitoring changed semantics";
  }
}

TEST(Semantics, PartitionHandlesNonDivisibleKeyspace) {
  ServeOptions o;
  o.shards = 4;
  o.clients = 1;
  o.numKeys = 13;  // shards own 4, 3, 3, 3 keys
  JungleServe sv(o);
  std::vector<Command> cmds;
  for (ObjectId k = 0; k < 13; ++k) cmds.push_back(put(k, 100 + k));
  runAll(sv, 0, cmds);
  sv.shutdown();
  for (ObjectId k = 0; k < 13; ++k) EXPECT_EQ(sv.finalValue(k), 100u + k);
}

// ------------------------------------------------- shutdown & retries

TEST(Shutdown, GracefulDrainLosesNoAcceptedCommand) {
  ServeOptions o;
  o.shards = 4;
  o.clients = 3;
  o.numKeys = 256;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 4000;
  lo.readPct = 50;
  lo.rmwPct = 30;
  lo.txnPct = 10;
  lo.zipfTheta = 0.9;
  const LoadReport r = runLoad(sv, lo);
  sv.shutdown();
  // Every accepted command was executed and acknowledged exactly once.
  EXPECT_EQ(r.submitted, 3u * 4000u);
  EXPECT_EQ(r.acked, r.submitted);
  EXPECT_EQ(r.committed + r.failed, r.acked);
  EXPECT_EQ(sv.stats().totalCommands(), r.submitted);
  EXPECT_EQ(sv.stats().totalCommitted(), r.committed);
}

TEST(Shutdown, IsIdempotentAndRunsViaDestructor) {
  ServeOptions o;
  o.shards = 1;
  o.clients = 1;
  o.numKeys = 8;
  JungleServe sv(o);
  runAll(sv, 0, {put(1, 7)});
  sv.shutdown();
  sv.shutdown();  // second call is a no-op
  EXPECT_EQ(sv.finalValue(1), 7u);
}

TEST(Retry, ExhaustedAttemptBudgetFailsDeterministically) {
  // maxTxAttempts = 0: the bounded-retry guard aborts every body on its
  // first invocation, so every command conclusively fails — and the
  // service stays live and acknowledges all of them.
  ServeOptions o;
  o.shards = 1;
  o.clients = 1;
  o.numKeys = 8;
  o.maxTxAttempts = 0;
  o.maxCommandRetries = 2;
  JungleServe sv(o);
  const auto acks = runAll(sv, 0, {put(1, 5), rmw(1, 1), get(1)});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 3u);
  for (const auto& a : acks) EXPECT_EQ(a.status, CmdStatus::kFailed);
  EXPECT_EQ(sv.finalValue(1), 0u);  // nothing committed
  EXPECT_EQ(sv.stats().totalFailed(), 3u);
  // Each command burned its full service-level retry budget.
  EXPECT_EQ(sv.stats().shards[0].serviceRetries, 3u);
}

TEST(Retry, ContendedExecutorsStayLiveAndConserveSums) {
  // Two executor lanes per shard hammering one hot key with rmw: real
  // intra-shard conflicts on the TM.  Liveness (all acked) and the
  // committed-increment conservation are schedule-independent.
  ServeOptions o;
  o.shards = 1;
  o.clients = 2;
  o.executorsPerShard = 2;
  o.numKeys = 4;
  o.kind = TmKind::kTl2Weak;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 2000;
  lo.readPct = 0;
  lo.rmwPct = 100;
  lo.zipfTheta = 0.99;
  const LoadReport r = runLoad(sv, lo);
  sv.shutdown();
  EXPECT_EQ(r.acked, r.submitted);
  // Every committed rmw added its delta exactly once; failed ones added
  // nothing.  The generator draws deltas in [1, 64], so committed > 0
  // implies a nonzero sum — the exact value is checked by conservation:
  // committed + failed == acked.
  EXPECT_EQ(r.committed + r.failed, r.acked);
  EXPECT_GT(r.committed, 0u);
}

// ------------------------------------------------- sampled monitoring

TEST(Sampling, AttachRegulatorTracksTheCommandBudget) {
  // A fresh shard attaches immediately (0 <= 0), stays detached while the
  // monitored share exceeds the duty, and re-attaches once enough
  // unmonitored commands have diluted the share back to the target.
  EXPECT_TRUE(Shard::attachDue(0, 0, 40));
  EXPECT_FALSE(Shard::attachDue(1000, 1000, 40));   // 100% > 4%
  EXPECT_FALSE(Shard::attachDue(1000, 24999, 40));  // 4.0002% > 4%
  EXPECT_TRUE(Shard::attachDue(1000, 25000, 40));   // exactly 4%
  EXPECT_TRUE(Shard::attachDue(1000, 40000, 40));   // 2.5% < 4%
  EXPECT_TRUE(Shard::attachDue(7, 7, 1000));        // full duty never waits
}

TEST(Sampling, MonitoredCommandShareConvergesToTheDuty) {
  // End to end: the command-budget regulator keeps the monitored fraction
  // of commands near duty/1000 even though epochs are dynamically sized
  // (monitored epochs run slower and attract bigger batches — an
  // epoch-counted duty cycle oversamples badly under exactly this load).
  ServeOptions o;
  o.shards = 1;
  o.clients = 2;
  o.numKeys = 64;
  o.samplePermille = 100;  // one shard -> duty 100 permille
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 20000;
  lo.readPct = 60;
  lo.rmwPct = 20;
  runLoad(sv, lo);
  sv.shutdown();
  const ShardServeStats& sh = sv.stats().shards[0];
  ASSERT_GT(sh.commands, 0u);
  const double share =
      static_cast<double>(sh.monitoredCommands) /
      static_cast<double>(sh.commands);
  // One attach window always runs (coverage floor), so the share can
  // overshoot on short runs but must stay the right order of magnitude.
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.30);
  EXPECT_EQ(sv.totalViolations(), 0u);
}

TEST(Sampling, PlanConcentratesTheBudgetOnFewShards) {
  ServeOptions o;
  o.shards = 4;
  o.clients = 1;
  o.numKeys = 64;
  o.samplePermille = 10;  // 1% of total traffic
  JungleServe sv(o);
  EXPECT_EQ(sv.sampledShards(), 1u);
  EXPECT_EQ(sv.dutyPermille(), 40u);  // 4x concentrated on one shard
  EXPECT_TRUE(sv.shard(0).sampled());
  EXPECT_FALSE(sv.shard(1).sampled());
  sv.shutdown();
}

TEST(Sampling, AttachDetachUnderLoadConvictsNothing) {
  // Detached windows mutate state the checker never sees; the blind-write
  // resync at each attach must keep every re-attached window conviction
  // free.  Small windows force many attach/detach transitions.
  for (TmKind kind : {TmKind::kTl2Weak, TmKind::kSnapshotIsolation}) {
    ServeOptions o;
    o.kind = kind;
    o.shards = 2;
    o.clients = 2;
    o.numKeys = 64;
    o.epochBatchLimit = 64;  // more epochs -> more transitions
    o.samplePermille = 250;
    o.sampleWindowEpochs = 2;
    JungleServe sv(o);
    LoadOptions lo;
    lo.opsPerClient = 3000;
    lo.readPct = 40;
    lo.rmwPct = 40;
    lo.txnPct = 10;
    lo.zipfTheta = 0.9;
    runLoad(sv, lo);
    sv.shutdown();
    const ShardServeStats& sh = sv.stats().shards[0];
    EXPECT_TRUE(sh.sampled);
    EXPECT_GT(sh.monitoredEpochs, 0u);
    EXPECT_LT(sh.monitoredEpochs, sh.epochs);  // it really detached
    EXPECT_GT(sh.resyncTxs, 0u);               // and re-attached
    EXPECT_EQ(sv.totalViolations(), 0u) << tmKindName(kind);
  }
}

TEST(Sampling, UnsampledShardsCarryNoMonitor) {
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  o.samplePermille = 0;
  JungleServe sv(o);
  runAll(sv, 0, {put(0, 1), put(1, 1)});
  sv.shutdown();
  for (const auto& sh : sv.stats().shards) {
    EXPECT_FALSE(sh.sampled);
    EXPECT_EQ(sh.monitoredEpochs, 0u);
    EXPECT_EQ(sh.monitor.eventsCaptured, 0u);
  }
}

TEST(Sampling, InjectedBugIsConvictedThroughTheSampledMonitor) {
  // End-to-end self-test: a corrupted transactional read spliced into the
  // sampled capture stream must surface as a monitor violation.
  ServeOptions o;
  o.kind = TmKind::kTl2Weak;
  o.shards = 2;
  o.clients = 2;
  o.numKeys = 128;
  o.samplePermille = 250;  // shard 0 at 50% duty
  o.injectBug = monitor::InjectedBug::kCorruptTxRead;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 3000;
  lo.readPct = 70;
  lo.rmwPct = 20;
  const LoadReport r = runLoad(sv, lo);
  sv.shutdown();
  EXPECT_EQ(r.acked, r.submitted);  // the service itself is unaffected
  EXPECT_GE(sv.totalViolations(), 1u);
  EXPECT_GE(sv.violations(0).size(), 1u);  // the armed shard convicted
}

TEST(Sampling, InjectedBugIsInvisibleWithoutSampling) {
  // The documented caveat, as a test: with sampling off no monitor
  // exists, so the same defect goes unobserved.  (This is why
  // --sample-permille trades coverage for cost, not correctness.)
  ServeOptions o;
  o.kind = TmKind::kTl2Weak;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 128;
  o.samplePermille = 0;
  o.injectBug = monitor::InjectedBug::kCorruptTxRead;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 2000;
  lo.readPct = 70;
  runLoad(sv, lo);
  sv.shutdown();
  EXPECT_EQ(sv.totalViolations(), 0u);
}

// ------------------------------------------- cross-shard transactions

TEST(XShard, DuplicateKeysKeepSequentialReadWriteSemantics) {
  // kTxn reads a key it already wrote through its own write; the 2PC
  // prepare emulates that with its deferred-update buffer.  Key 0 appears
  // twice: read 5 write 6, then read 6 write 8 — sum 5 + 0 + 6.
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  runAll(sv, 0, {put(0, 5)});
  const auto acks = runAll(sv, 0, {txnx({{0, 1}, {1, 10}, {0, 2}})});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, CmdStatus::kOk);
  EXPECT_EQ(acks[0].value, 11u);
  EXPECT_EQ(sv.finalValue(0), 8u);
  EXPECT_EQ(sv.finalValue(1), 10u);
}

TEST(XShard, TransferWorkloadConservesTheTotalAcrossShards) {
  // Zero-sum transfers (+d on one key, -d on another, usually on distinct
  // shards) under concurrent multi-client load: if any acked kTxnX were
  // torn — one slice applied, the other dropped — the keyspace total
  // would drift.  Unsigned wraparound cancels exactly, so the invariant
  // is exact, schedule-independent, and holds for committed and failed
  // (nothing-committed) outcomes alike.
  for (TmKind kind : {TmKind::kTl2Weak, TmKind::kSnapshotIsolation}) {
    ServeOptions o;
    o.kind = kind;
    o.shards = 4;
    o.clients = 3;
    o.numKeys = 64;
    JungleServe sv(o);
    std::vector<Command> init;
    for (ObjectId k = 0; k < 64; ++k) init.push_back(put(k, 100));
    runAll(sv, 0, init);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < 3; ++c) {
      threads.emplace_back([&sv, c] {
        Rng rng(1000 + c);
        std::vector<Command> cmds;
        for (int i = 0; i < 2500; ++i) {
          const auto a = static_cast<ObjectId>(rng.below(64));
          if (rng.below(4) == 0) {
            cmds.push_back(get(a));
            continue;
          }
          const auto b = static_cast<ObjectId>(rng.below(64));
          const Word d = 1 + rng.below(9);
          cmds.push_back(txnx({{a, d}, {b, 0 - d}}));
        }
        runAll(sv, c, cmds);
      });
    }
    for (auto& t : threads) t.join();
    sv.shutdown();
    Word total = 0;
    for (ObjectId k = 0; k < 64; ++k) total += sv.finalValue(k);
    EXPECT_EQ(total, 64u * 100u) << tmKindName(kind);
    EXPECT_GT(sv.stats().coordinator.committed, 0u);
    EXPECT_EQ(sv.totalViolations(), 0u);
  }
}

TEST(XShard, ExhaustedAttemptBudgetFailsDeterministicallyAndAtomically) {
  // maxTxAttempts = 0 makes every prepare vote NO on its first body run,
  // so every kTxnX burns its retry budget and is acked kFailed with
  // nothing committed on ANY shard — the all-or-nothing guarantee holds
  // for the failure path too.
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  o.maxTxAttempts = 0;
  o.maxCommandRetries = 2;
  JungleServe sv(o);
  const auto acks =
      runAll(sv, 0, {txnx({{0, 1}, {1, 1}}), txnx({{2, 1}, {3, 1}})});
  sv.shutdown();
  ASSERT_EQ(acks.size(), 2u);
  for (const auto& a : acks) EXPECT_EQ(a.status, CmdStatus::kFailed);
  for (ObjectId k = 0; k < 4; ++k) EXPECT_EQ(sv.finalValue(k), 0u);
  const ServeStats& st = sv.stats();
  EXPECT_EQ(st.coordinator.txns, 2u);
  EXPECT_EQ(st.coordinator.failed, 2u);
  EXPECT_EQ(st.coordinator.committed, 0u);
  // Each transaction used its one abort-and-retry round before failing.
  EXPECT_EQ(st.coordinator.retries, 2u);
  EXPECT_EQ(st.shards[0].xCommits + st.shards[1].xCommits, 0u);
  EXPECT_GT(st.coordinator.voteNo, 0u);
}

TEST(XShard, GracefulDrainWithInFlightPreparesConservesTheSum) {
  // Submit a burst of transfers and shut down while they are still in
  // flight (possibly mid-2PC): every accepted command must still be
  // decided and acked, and the keyspace total must be intact.
  ServeOptions o;
  o.shards = 2;
  o.clients = 1;
  o.numKeys = 16;
  JungleServe sv(o);
  std::vector<Command> init;
  for (ObjectId k = 0; k < 16; ++k) init.push_back(put(k, 10));
  runAll(sv, 0, init);
  auto& cl = sv.client(0);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<ObjectId>(rng.below(16));
    const auto b = static_cast<ObjectId>(rng.below(16));
    const Word d = 1 + rng.below(5);
    ASSERT_TRUE(cl.trySubmit(txnx({{a, d}, {b, 0 - d}})));  // within credit
  }
  sv.shutdown();  // drains with prepares in flight
  std::vector<CommandResult> acks;
  cl.drainResponses(acks);
  EXPECT_EQ(cl.acked(), cl.submitted());
  EXPECT_EQ(cl.acked(), 16u + 200u);
  Word total = 0;
  for (ObjectId k = 0; k < 16; ++k) total += sv.finalValue(k);
  EXPECT_EQ(total, 16u * 10u);
  const CoordinatorStats& co = sv.stats().coordinator;
  EXPECT_EQ(co.committed + co.failed, co.txns);
}

TEST(XShard, MonitoredCrossShardTrafficConvictsNothing) {
  // Soundness of the monitor integration: 2PC slices on a sampled shard
  // flow through the monitored wrapper under the same attach-window rules
  // as epochs (boundaryMonitored), so heavy cross-shard traffic — with
  // attach/detach churn and resyncs — must never convict a correct TM.
  for (TmKind kind : {TmKind::kTl2Weak, TmKind::kSnapshotIsolation,
                      TmKind::kSiSsn}) {
    ServeOptions o;
    o.kind = kind;
    o.shards = 2;
    o.clients = 2;
    o.numKeys = 64;
    o.epochBatchLimit = 64;
    o.samplePermille = 250;  // shard 0 at 50% duty: many transitions
    o.sampleWindowEpochs = 2;
    JungleServe sv(o);
    LoadOptions lo;
    lo.opsPerClient = 4000;
    lo.readPct = 40;
    lo.rmwPct = 30;
    lo.txnPct = 20;
    lo.crossShardPct = 50;
    lo.zipfTheta = 0.9;
    const LoadReport r = runLoad(sv, lo);
    sv.shutdown();
    EXPECT_EQ(r.acked, r.submitted);
    EXPECT_GT(sv.stats().coordinator.committed, 0u);
    EXPECT_GT(sv.stats().shards[0].xPrepares, 0u);
    EXPECT_EQ(sv.totalViolations(), 0u) << tmKindName(kind);
  }
}

class XShardConviction : public ::testing::TestWithParam<TmKind> {};

TEST_P(XShardConviction, PlantedCrossShardAtomicityBugIsConvicted) {
  // End-to-end: shard 0 (sampled, full duty) silently drops its slice of
  // one committed kTxnX.  The capture stream claims the slice committed
  // while the real state disagrees, so a later monitored access convicts
  // — a stale read under tl2, a snapshot/first-committer-wins violation
  // under si-mvcc.
  ServeOptions o;
  o.kind = GetParam();
  o.shards = 2;
  o.clients = 2;
  o.numKeys = 64;
  o.samplePermille = 500;  // shard 0 at full duty
  o.injectCrossShardBug = true;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 30000;
  lo.readPct = 40;
  lo.rmwPct = 30;
  lo.txnPct = 20;
  lo.crossShardPct = 100;
  lo.zipfTheta = 0.9;
  const LoadReport r = runLoad(sv, lo);
  sv.shutdown();
  EXPECT_EQ(r.acked, r.submitted);  // the service itself is unaffected
  EXPECT_EQ(sv.stats().shards[0].xBugDrops, 1u);  // the defect fired once
  EXPECT_GE(sv.totalViolations(), 1u);
  EXPECT_GE(sv.violations(0).size(), 1u);  // the armed shard convicted
}

INSTANTIATE_TEST_SUITE_P(Tl2AndSiMvcc, XShardConviction,
                         ::testing::Values(TmKind::kTl2Weak,
                                           TmKind::kSnapshotIsolation),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// --------------------------------------------------- stats & all kinds

TEST(Stats, AggregatesAreConsistentAcrossShards) {
  ServeOptions o;
  o.shards = 3;
  o.clients = 2;
  o.numKeys = 27;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 1500;
  lo.readPct = 60;
  lo.rmwPct = 20;
  const LoadReport r = runLoad(sv, lo);
  sv.shutdown();
  const ServeStats& st = sv.stats();
  ASSERT_EQ(st.shards.size(), 3u);
  std::uint64_t cmds = 0;
  for (const auto& sh : st.shards) {
    EXPECT_EQ(sh.commands, sh.gets + sh.puts + sh.rmws + sh.txns);
    EXPECT_EQ(sh.commands, sh.committed + sh.failed);
    cmds += sh.commands;
  }
  EXPECT_EQ(cmds, st.totalCommands());
  EXPECT_EQ(cmds, r.acked);
  EXPECT_GT(st.wallSeconds, 0.0);
}

class ServeAllKinds : public ::testing::TestWithParam<TmKind> {};

TEST_P(ServeAllKinds, ShortSampledRunCommitsAndConvictsNothing) {
  ServeOptions o;
  o.kind = GetParam();
  o.shards = 2;
  o.clients = 2;
  o.numKeys = 64;
  o.samplePermille = 100;
  JungleServe sv(o);
  LoadOptions lo;
  lo.opsPerClient = 1200;
  lo.readPct = 60;
  lo.rmwPct = 20;
  lo.txnPct = 10;
  lo.zipfTheta = 0.9;
  const LoadReport r = runLoad(sv, lo);
  sv.shutdown();
  EXPECT_EQ(r.acked, r.submitted);
  EXPECT_GT(r.committed, 0u);
  EXPECT_EQ(sv.totalViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ServeAllKinds,
                         ::testing::ValuesIn(allTmKinds()),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace jungle::serve
