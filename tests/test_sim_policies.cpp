// Direct tests of the memory policies (native and recording): primitive
// semantics, marker bookkeeping, and trace extraction.
#include <gtest/gtest.h>

#include <thread>

#include "sim/memory_policy.hpp"
#include "sim/trace_history.hpp"

namespace jungle {
namespace {

// --------------------------------------------------------------- native

TEST(NativeMemory, LoadStoreCasSemantics) {
  NativeMemory mem(4);
  EXPECT_EQ(mem.load(0, 0), 0u);
  mem.store(0, 0, 7);
  EXPECT_EQ(mem.load(1, 0), 7u);
  EXPECT_FALSE(mem.cas(0, 0, 3, 9));  // expected mismatch
  EXPECT_EQ(mem.load(0, 0), 7u);
  EXPECT_TRUE(mem.cas(0, 0, 7, 9));
  EXPECT_EQ(mem.load(0, 0), 9u);
}

TEST(NativeMemory, CellsAreIndependent) {
  NativeMemory mem(8);
  for (Addr a = 0; a < 8; ++a) mem.store(0, a, a * 10);
  for (Addr a = 0; a < 8; ++a) EXPECT_EQ(mem.load(0, a), a * 10);
}

TEST(NativeMemory, ConcurrentCasIsAtomic) {
  NativeMemory mem(1);
  constexpr int kThreads = 4, kIncrements = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          const Word cur = mem.load(0, 0);
          if (mem.cas(0, 0, cur, cur + 1)) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(mem.load(0, 0), static_cast<Word>(kThreads * kIncrements));
}

// ------------------------------------------------------------- recording

TEST(RecordingMemory, RecordsEveryInstructionInOrder) {
  RecordingMemory mem(4);
  const OpId w = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(5));
  mem.store(0, 0, 5);
  mem.markPoint(0, w);
  mem.endOp(0, w, OpType::kCommand, 0, cmdWrite(5));
  const OpId r = mem.beginOp(1, OpType::kCommand, 0, cmdRead(0));
  EXPECT_EQ(mem.load(1, 0), 5u);
  mem.endOp(1, r, OpType::kCommand, 0, cmdRead(5));

  Trace t = mem.trace();
  // write op: invoke/store/point/respond; read op: invoke/load/respond.
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0].kind, InsnKind::kInvoke);
  EXPECT_EQ(t[1].kind, InsnKind::kStore);
  EXPECT_EQ(t[2].kind, InsnKind::kPoint);
  EXPECT_EQ(t[3].kind, InsnKind::kRespond);
  EXPECT_TRUE(traceWellFormed(t));
  EXPECT_TRUE(traceMachineConsistent(t));
}

TEST(RecordingMemory, AssignsFreshOperationIds) {
  RecordingMemory mem(2);
  const OpId a = mem.beginOp(0, OpType::kStart, kNoObject, {});
  mem.endOp(0, a, OpType::kStart, kNoObject, {});
  const OpId b = mem.beginOp(1, OpType::kCommand, 0, cmdRead(0));
  mem.endOp(1, b, OpType::kCommand, 0, cmdRead(0));
  EXPECT_NE(a, b);
  EXPECT_GT(a, 0u);
}

TEST(RecordingMemory, CasOutcomeIsRecorded) {
  RecordingMemory mem(2);
  const OpId op = mem.beginOp(0, OpType::kStart, kNoObject, {});
  EXPECT_TRUE(mem.cas(0, 0, 0, 4));
  EXPECT_FALSE(mem.cas(0, 0, 0, 9));
  mem.endOp(0, op, OpType::kStart, kNoObject, {});
  Trace t = mem.trace();
  EXPECT_TRUE(t[1].casOk);
  EXPECT_FALSE(t[2].casOk);
  EXPECT_TRUE(traceMachineConsistent(t));
}

TEST(RecordingMemory, InstructionOutsideOperationDies) {
  RecordingMemory mem(2);
  EXPECT_DEATH(mem.store(0, 0, 1), "outside an operation");
}

TEST(RecordingMemory, NestedOperationsOnOneProcessDie) {
  RecordingMemory mem(2);
  (void)mem.beginOp(0, OpType::kStart, kNoObject, {});
  EXPECT_DEATH((void)mem.beginOp(0, OpType::kCommit, kNoObject, {}),
               "nested");
}

TEST(RecordingMemory, HistoryExtractionEndToEnd) {
  RecordingMemory mem(2);
  const OpId w = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(3));
  mem.store(0, 0, 3);
  mem.markPoint(0, w);
  mem.endOp(0, w, OpType::kCommand, 0, cmdWrite(3));
  const OpId r = mem.beginOp(0, OpType::kCommand, 0, cmdRead(0));
  const Word v = mem.load(0, 0);
  mem.markPoint(0, r);
  mem.endOp(0, r, OpType::kCommand, 0, cmdRead(v));

  History h = canonicalHistory(mem.trace());
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].cmd.kind, CmdKind::kWrite);
  EXPECT_EQ(h[1].cmd.value, 3u);
}

TEST(RecordingMemory, TraceSnapshotIsStable) {
  RecordingMemory mem(2);
  const OpId a = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(1));
  mem.store(0, 0, 1);
  mem.endOp(0, a, OpType::kCommand, 0, cmdWrite(1));
  Trace snap = mem.trace();
  const OpId b = mem.beginOp(0, OpType::kCommand, 0, cmdWrite(2));
  mem.store(0, 0, 2);
  mem.endOp(0, b, OpType::kCommand, 0, cmdWrite(2));
  EXPECT_EQ(snap.size(), 3u);        // unchanged
  EXPECT_EQ(mem.trace().size(), 6u);  // grew
}

}  // namespace
}  // namespace jungle
