// §5.2's dependent-read adaptation, verified mechanically.
//
// Theorem 5's TM (VersionedWriteTm) targets models outside M_rr ∪ M_wr.
// RMO and Java are in M^d_rr: *data-dependent* plain reads may not reorder,
// so the proof's read-shuffling breaks exactly when the program carries a
// dependence.  The paper's fix (footnote 4): treat such reads as volatile —
// a single-operation transaction.  Here the schedule explorer shows
//
//   * plain dependent reads   → some interleaving violates RMO-opacity,
//   * volatile dependent reads → every interleaving conforms,
//   * the same plain dependent reads under Alpha (∉ M_rr) stay fine.
#include <gtest/gtest.h>

#include "memmodel/models.hpp"
#include "sim/exploration.hpp"
#include "theorems/conformance.hpp"
#include "tm/versioned_write_tm.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

/// p0 transactionally writes x then y (commit updates a_x before a_y); p1
/// reads x and then performs a read of y that is DATA-DEPENDENT on it
/// (e.g. y's address was loaded from x).  The Theorem-1-case-1 shape:
/// between the two updates, rd x sees the new value while the dependent rd
/// y still sees the old one — and M^d_rr forbids reordering them.
/// `useVolatile` switches the dependent read between the unsafe plain load
/// and the §5.2 volatile treatment.
Program dependentChainProgram(bool useVolatile) {
  return [useVolatile](ScheduledMemory& mem) {
    auto tm = std::make_shared<VersionedWriteTm<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm, useVolatile] {
      auto t = tm->makeThread(1);
      (void)tm->ntRead(t, 0);  // rd x
      if (useVolatile) {
        (void)tm->ntReadVolatile(t, 1, /*dependentOnPrevious=*/true);
      } else {
        (void)tm->ntReadDependent(t, 1);  // plain ddrd y
      }
    });
    return scripts;
  };
}

ExploreStats explore(bool useVolatile, const MemoryModel& model) {
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.maxRuns = 1800;
  return exploreExhaustive(
      2, VersionedWriteTm<ScheduledMemory>::memoryWords(2),
      dependentChainProgram(useVolatile),
      [&](const RunOutcome& out) {
        return theorems::checkTracePopacity(out.trace, model, kRegisters).ok;
      },
      opts);
}

TEST(DependentReads, PlainDependentReadViolatesRmoOnSomeSchedule) {
  auto stats = explore(/*useVolatile=*/false, rmoModel());
  EXPECT_GT(stats.completedRuns, 5u);
  EXPECT_GT(stats.failures, 0u)
      << "the M^d_rr violation should be discoverable";
}

TEST(DependentReads, SameProgramIsFineUnderAlpha) {
  // Alpha reorders even data-dependent reads: Theorem 5 applies unchanged.
  auto stats = explore(/*useVolatile=*/false, alphaModel());
  EXPECT_GT(stats.completedRuns, 5u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(DependentReads, VolatileTreatmentRestoresRmoOpacity) {
  auto stats = explore(/*useVolatile=*/true, rmoModel());
  EXPECT_GT(stats.completedRuns, 5u);
  EXPECT_EQ(stats.failures, 0u)
      << "footnote 4's single-operation-transaction fix must close the gap";
}

TEST(DependentReads, VolatileReadReturnsCurrentValue) {
  NativeMemory mem(VersionedWriteTm<NativeMemory>::memoryWords(4));
  VersionedWriteTm<NativeMemory> tm(mem, 4);
  auto t = tm.makeThread(0);
  tm.ntWrite(t, 1, 9);
  EXPECT_EQ(tm.ntReadVolatile(t, 1), 9u);
  EXPECT_EQ(tm.ntReadVolatile(t, 1, /*dependentOnPrevious=*/true), 9u);
  EXPECT_EQ(tm.ntReadDependent(t, 1), 9u);
}

TEST(DependentReads, DependenceIsRecordedInTheTrace) {
  RecordingMemory mem(VersionedWriteTm<RecordingMemory>::memoryWords(4));
  VersionedWriteTm<RecordingMemory> tm(mem, 4);
  auto t = tm.makeThread(0);
  (void)tm.ntRead(t, 0);
  (void)tm.ntReadDependent(t, 1);
  History h = canonicalHistory(mem.trace());
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[1].cmd.kind, CmdKind::kDdRead);
  EXPECT_EQ(h[1].cmd.deps, (std::vector<OpId>{h[0].id}));
  HistoryAnalysis a(h);
  EXPECT_TRUE(a.wellFormed());
  // The RMO minimal view must order the pair.
  auto pairs = requiredViewPairs(rmoModel(), h, a);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(h[0].id, h[1].id));
}

}  // namespace
}  // namespace jungle
