// Golden outcome matrices: for each litmus shape, the complete
// allowed-outcome set under every memory model, pinned as a regression net.
// The tables also document the model lattice: allowed sets grow
// monotonically as models weaken.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

using Outcome = std::pair<Word, Word>;
using OutcomeSet = std::set<Outcome>;

OutcomeSet allowedSet(const MemoryModel& m,
                      History (*make)(Word, Word)) {
  OutcomeSet out;
  for (Word a : {0, 1}) {
    for (Word b : {0, 1}) {
      if (checkParametrizedOpacity(make(a, b), m, kRegisters).satisfied) {
        out.insert({a, b});
      }
    }
  }
  return out;
}

const OutcomeSet kAllFour{{0, 0}, {0, 1}, {1, 0}, {1, 1}};

// ---------------------------------------------------------------- Fig 1

TEST(Matrix, Figure1) {
  const OutcomeSet strong{{0, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(allowedSet(scModel(), litmus::fig1History), strong);
  EXPECT_EQ(allowedSet(tsoModel(), litmus::fig1History), strong);
  EXPECT_EQ(allowedSet(psoModel(), litmus::fig1History), strong);
  EXPECT_EQ(allowedSet(ia32Model(), litmus::fig1History), strong);
  EXPECT_EQ(allowedSet(junkScModel(), litmus::fig1History), strong);
  EXPECT_EQ(allowedSet(rmoModel(), litmus::fig1History), kAllFour);
  EXPECT_EQ(allowedSet(alphaModel(), litmus::fig1History), kAllFour);
  EXPECT_EQ(allowedSet(idealizedModel(), litmus::fig1History), kAllFour);
}

// ---------------------------------------------------------------- Fig 2b

TEST(Matrix, MessagePassing) {
  const OutcomeSet strong{{0, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(allowedSet(scModel(), litmus::fig2bHistory), strong);
  EXPECT_EQ(allowedSet(tsoModel(), litmus::fig2bHistory), strong);
  EXPECT_EQ(allowedSet(ia32Model(), litmus::fig2bHistory), strong);
  EXPECT_EQ(allowedSet(psoModel(), litmus::fig2bHistory), kAllFour);
  EXPECT_EQ(allowedSet(rmoModel(), litmus::fig2bHistory), kAllFour);
  EXPECT_EQ(allowedSet(alphaModel(), litmus::fig2bHistory), kAllFour);
  EXPECT_EQ(allowedSet(idealizedModel(), litmus::fig2bHistory), kAllFour);
}

// --------------------------------------------------------- store buffering

TEST(Matrix, StoreBuffering) {
  const OutcomeSet sc{{0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(allowedSet(scModel(), litmus::storeBufferHistory), sc);
  EXPECT_EQ(allowedSet(junkScModel(), litmus::storeBufferHistory), sc);
  // TSO and everything weaker admits (0, 0).
  for (const MemoryModel* m :
       std::vector<const MemoryModel*>{&tsoModel(), &psoModel(),
                                       &rmoModel(), &alphaModel(),
                                       &ia32Model(), &idealizedModel()}) {
    EXPECT_EQ(allowedSet(*m, litmus::storeBufferHistory), kAllFour)
        << m->name();
  }
}

// ------------------------------------------------------ dependent MP

TEST(Matrix, DependentMessagePassing) {
  const OutcomeSet ordered{{0, 0}, {0, 1}, {1, 1}};
  // The writer side is dependence-chained, the reader's second read is
  // data-dependent: only models relaxing *dependent* reads admit (1, 0).
  EXPECT_EQ(allowedSet(scModel(), litmus::dependentReadHistory), ordered);
  EXPECT_EQ(allowedSet(tsoModel(), litmus::dependentReadHistory), ordered);
  EXPECT_EQ(allowedSet(psoModel(), litmus::dependentReadHistory), ordered);
  EXPECT_EQ(allowedSet(rmoModel(), litmus::dependentReadHistory), ordered);
  EXPECT_EQ(allowedSet(alphaModel(), litmus::dependentReadHistory),
            kAllFour);
  EXPECT_EQ(allowedSet(idealizedModel(), litmus::dependentReadHistory),
            kAllFour);
}

// --------------------------------------------------------------- lattice

TEST(Matrix, AllowedSetsGrowAsModelsWeaken) {
  // View-inclusion chains: SC ⊒ TSO ⊒ PSO ⊒ RMO ⊒ Idealized and
  // SC ⊒ TSO ⊒ PSO ⊒ Alpha ⊒ Idealized (required-pair containment) imply
  // allowed-set inclusion for every identity-τ litmus.
  const std::vector<History (*)(Word, Word)> shapes{
      litmus::fig1History, litmus::fig2bHistory, litmus::storeBufferHistory,
      litmus::dependentReadHistory};
  const std::vector<const MemoryModel*> chain1{
      &scModel(), &tsoModel(), &psoModel(), &rmoModel(), &idealizedModel()};
  const std::vector<const MemoryModel*> chain2{
      &scModel(), &tsoModel(), &psoModel(), &alphaModel(),
      &idealizedModel()};
  for (auto make : shapes) {
    for (const auto& chain : {chain1, chain2}) {
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        const OutcomeSet stronger = allowedSet(*chain[i], make);
        const OutcomeSet weaker = allowedSet(*chain[i + 1], make);
        EXPECT_TRUE(std::includes(weaker.begin(), weaker.end(),
                                  stronger.begin(), stronger.end()))
            << chain[i]->name() << " vs " << chain[i + 1]->name();
      }
    }
  }
}

// --------------------------------------------------------------- IRIW

TEST(Matrix, IriwNeedsReadReordering) {
  auto allowed4 = [&](const MemoryModel& m, Word a, Word b, Word c,
                      Word d) {
    return checkParametrizedOpacity(litmus::iriwHistory(a, b, c, d), m,
                                    kRegisters)
        .satisfied;
  };
  // The contradictory observation.
  for (const MemoryModel* m :
       std::vector<const MemoryModel*>{&scModel(), &tsoModel(),
                                       &psoModel()}) {
    EXPECT_FALSE(allowed4(*m, 1, 0, 1, 0)) << m->name();
  }
  for (const MemoryModel* m :
       std::vector<const MemoryModel*>{&rmoModel(), &alphaModel(),
                                       &idealizedModel()}) {
    EXPECT_TRUE(allowed4(*m, 1, 0, 1, 0)) << m->name();
  }
  // Consistent observations are allowed everywhere.
  for (const MemoryModel* m : allModels()) {
    EXPECT_TRUE(allowed4(*m, 1, 1, 1, 1)) << m->name();
    EXPECT_TRUE(allowed4(*m, 0, 0, 0, 0)) << m->name();
  }
}

}  // namespace
}  // namespace jungle
