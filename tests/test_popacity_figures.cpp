// Parametrized opacity on the paper's figures (§1 Figures 1–2, §3.3's
// Figure 3 discussion): the checker must reproduce every allowed/forbidden
// outcome the paper states.
#include <gtest/gtest.h>

#include <set>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"

namespace jungle {
namespace {

using litmus::fig1History;
using litmus::fig2aHistory;
using litmus::fig2bHistory;
using litmus::fig2cHistory;
using litmus::fig3History;

bool allowed(const History& h, const MemoryModel& m) {
  SpecMap specs;
  CheckResult r = checkParametrizedOpacity(h, m, specs);
  EXPECT_FALSE(r.inconclusive);
  return r.satisfied;
}

// ---------------------------------------------------------------- Figure 3

TEST(Fig3, OpaqueWrtScIffVEqualsOne) {
  // "h is parametrized opaque with respect to MSC if v = 1."
  EXPECT_TRUE(allowed(fig3History(1, 1), scModel()));
  EXPECT_FALSE(allowed(fig3History(0, 1), scModel()));
  EXPECT_FALSE(allowed(fig3History(2, 1), scModel()));
}

TEST(Fig3, OpaqueWrtRmoForVZeroOrOne) {
  // "h is parametrized opaque with respect to Mrmo if v = 0 or v = 1."
  EXPECT_TRUE(allowed(fig3History(0, 1), rmoModel()));
  EXPECT_TRUE(allowed(fig3History(1, 1), rmoModel()));
  EXPECT_FALSE(allowed(fig3History(2, 1), rmoModel()));
}

TEST(Fig3, VPrimeIsForcedToOneEverywhere) {
  // Op 9 follows p3's transaction, which follows p1's transaction, which
  // follows the only write of x: v' = 1 under every model.
  for (const MemoryModel* m : allModels()) {
    EXPECT_FALSE(allowed(fig3History(1, 0), *m)) << m->name();
    EXPECT_FALSE(allowed(fig3History(1, 7), *m)) << m->name();
  }
}

TEST(Fig3, JunkScMatchesScWhenReadsAreClean) {
  // "h is parametrized opaque with respect to Mjunk if v = 1."
  EXPECT_TRUE(allowed(fig3History(1, 1), junkScModel()));
  EXPECT_FALSE(allowed(fig3History(0, 1), junkScModel()));
}

TEST(Fig3, JunkScAllowsAnyVWhenYReadReturnsZero) {
  // "if operation 3 read y as 0, then opacity parametrized by Mjunk allows
  // operation 6 to read any value."  Variant of fig3 with op 3 = (rd,y,0):
  // op 6 can race into the havoc window of op 1's write.
  auto variant = [](Word v) {
    HistoryBuilder b;
    b.write(1, 0, 1, 1);
    b.start(1, 2);
    b.read(2, 1, 0, 3);  // y read as 0
    b.write(1, 1, 1, 4);
    b.commit(1, 5);
    b.read(2, 0, v, 6);
    return b.build();
  };
  EXPECT_TRUE(allowed(variant(0), junkScModel()));
  EXPECT_TRUE(allowed(variant(1), junkScModel()));
  EXPECT_TRUE(allowed(variant(424242), junkScModel()));
  // Under plain SC the same variant pins v to 0 or 1.
  EXPECT_FALSE(allowed(variant(424242), scModel()));
}

// ---------------------------------------------------------------- Figure 1

TEST(Fig1, ScForbidsR1OneR2Zero) {
  // Larus-style strong atomicity (= opacity parametrized by SC): no.
  EXPECT_FALSE(allowed(fig1History(1, 0), scModel()));
}

TEST(Fig1, RmoAllowsR1OneR2Zero) {
  // Martin et al. strong atomicity (= opacity parametrized by RMO): yes.
  EXPECT_TRUE(allowed(fig1History(1, 0), rmoModel()));
}

TEST(Fig1, CommonOutcomesAllowedEverywhere) {
  for (const MemoryModel* m : allModels()) {
    EXPECT_TRUE(allowed(fig1History(0, 0), *m)) << m->name();
    EXPECT_TRUE(allowed(fig1History(1, 1), *m)) << m->name();
    EXPECT_TRUE(allowed(fig1History(0, 1), *m)) << m->name();
  }
}

TEST(Fig1, TransactionNeverTearsRegardlessOfModel) {
  // r1 = 1, r2 = 0 under TSO/PSO also stays forbidden (reads are ordered);
  // the transaction's atomicity itself is model-independent.
  EXPECT_FALSE(allowed(fig1History(1, 0), tsoModel()));
  EXPECT_FALSE(allowed(fig1History(1, 0), psoModel()));
  // Junk values cannot appear: x was never written with 7.
  EXPECT_FALSE(allowed(fig1History(7, 0), rmoModel()));
}

// ---------------------------------------------------------------- Figure 2a

class Fig2aTest : public ::testing::TestWithParam<const MemoryModel*> {};

TEST_P(Fig2aTest, ZIsNeverNegativeAndIntermediateStateInvisible) {
  const MemoryModel& m = *GetParam();
  // Allowed (a, b) pairs: (0,0), (2,0), (2,2) — transactions are atomic and
  // real-time ordered regardless of the memory model.
  const std::set<std::pair<Word, Word>> expectAllowed{{0, 0}, {2, 0}, {2, 2}};
  for (Word a : {0, 1, 2}) {
    for (Word b : {0, 1, 2}) {
      const bool want = expectAllowed.count({a, b}) > 0;
      EXPECT_EQ(allowed(fig2aHistory(a, b, true), m), want)
          << m.name() << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(Fig2aTest, AbortedObserverIsConstrainedEqually) {
  const MemoryModel& m = *GetParam();
  // "even if thread 2 aborts, opacity requires that z is 0 or 2."
  EXPECT_TRUE(allowed(fig2aHistory(2, 0, false), m)) << m.name();
  EXPECT_FALSE(allowed(fig2aHistory(0, 2, false), m)) << m.name();
  EXPECT_FALSE(allowed(fig2aHistory(1, 0, false), m)) << m.name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, Fig2aTest,
                         ::testing::Values(&scModel(), &tsoModel(),
                                           &rmoModel(), &alphaModel(),
                                           &idealizedModel()),
                         [](const auto& info) {
                           std::string n = info.param->name();
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------- Figure 2b

TEST(Fig2b, PurelyNonTransactionalBehaviorFollowsTheModel) {
  // (r1, r2) = (1, 0): message-passing violation.  Requires relaxing W→W
  // or R→R — so PSO, RMO, Alpha, Idealized allow; SC and TSO forbid.
  EXPECT_FALSE(allowed(fig2bHistory(1, 0), scModel()));
  EXPECT_FALSE(allowed(fig2bHistory(1, 0), tsoModel()));
  EXPECT_TRUE(allowed(fig2bHistory(1, 0), psoModel()));
  EXPECT_TRUE(allowed(fig2bHistory(1, 0), rmoModel()));
  EXPECT_TRUE(allowed(fig2bHistory(1, 0), alphaModel()));
  EXPECT_TRUE(allowed(fig2bHistory(1, 0), idealizedModel()));
}

TEST(Fig2b, UncontroversialOutcomesAllowedEverywhere) {
  for (const MemoryModel* m : allModels()) {
    for (auto [r1, r2] :
         {std::pair<Word, Word>{0, 0}, {0, 1}, {1, 1}}) {
      EXPECT_TRUE(allowed(fig2bHistory(r1, r2), *m))
          << m->name() << " (" << r1 << "," << r2 << ")";
    }
  }
}

TEST(Fig2b, JunkScAllowsThinAirHere) {
  // Under Junk-SC a racy read may fall into a havoc window and return any
  // value.  (7, 7) is still impossible even here: SC views order p1's
  // reads, and once the y-read passed y's havoc, x's havoc window — which
  // precedes it in p0's program order — has already been closed by x := 1.
  EXPECT_TRUE(allowed(fig2bHistory(0, 7), junkScModel()));
  EXPECT_TRUE(allowed(fig2bHistory(7, 1), junkScModel()));
  EXPECT_FALSE(allowed(fig2bHistory(7, 7), junkScModel()));
  EXPECT_FALSE(allowed(fig2bHistory(0, 7), scModel()));
  EXPECT_FALSE(allowed(fig2bHistory(7, 1), scModel()));
}

// ---------------------------------------------------------------- Figure 2c

class Fig2cTest : public ::testing::TestWithParam<const MemoryModel*> {};

TEST_P(Fig2cTest, IntermediateStateInvisibleToNonTransactionalCode) {
  const MemoryModel& m = *GetParam();
  // "Thread 2 cannot observe an intermediate state … thus z ≠ 1."
  EXPECT_FALSE(allowed(fig2cHistory(1, 0, 0), m)) << m.name();
  EXPECT_FALSE(allowed(fig2cHistory(1, 1, 1), m)) << m.name();
  EXPECT_TRUE(allowed(fig2cHistory(0, 0, 0), m)) << m.name();
  EXPECT_TRUE(allowed(fig2cHistory(2, 2, 2), m)) << m.name();
  EXPECT_TRUE(allowed(fig2cHistory(2, 0, 0), m)) << m.name();
}

TEST_P(Fig2cTest, NonTransactionalWriteCannotSplitATransaction) {
  const MemoryModel& m = *GetParam();
  // "the effect of a non-transactional operation cannot show up in the
  // middle of a transaction.  Thus, r1 = r2."
  EXPECT_FALSE(allowed(fig2cHistory(2, 0, 2), m)) << m.name();
  EXPECT_FALSE(allowed(fig2cHistory(2, 2, 0), m)) << m.name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, Fig2cTest,
                         ::testing::Values(&scModel(), &tsoModel(),
                                           &psoModel(), &rmoModel(),
                                           &alphaModel(), &idealizedModel()),
                         [](const auto& info) {
                           std::string n = info.param->name();
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------- litmus

TEST(StoreBuffer, TsoAllowsWhatScForbids) {
  using litmus::storeBufferHistory;
  EXPECT_FALSE(allowed(storeBufferHistory(0, 0), scModel()));
  EXPECT_TRUE(allowed(storeBufferHistory(0, 0), tsoModel()));
  EXPECT_TRUE(allowed(storeBufferHistory(0, 0), psoModel()));
  // Non-racy outcomes allowed everywhere.
  EXPECT_TRUE(allowed(storeBufferHistory(1, 1), scModel()));
  EXPECT_TRUE(allowed(storeBufferHistory(0, 1), scModel()));
  EXPECT_TRUE(allowed(storeBufferHistory(1, 0), scModel()));
}

TEST(Iriw, ContradictoryObservationsNeedReadReordering) {
  using litmus::iriwHistory;
  // a=1,b=0 (p2: x then y), c=1,d=0 (p3: y then x): forbidden while reads
  // stay ordered, allowed once R→R relaxes.
  EXPECT_FALSE(allowed(iriwHistory(1, 0, 1, 0), scModel()));
  EXPECT_FALSE(allowed(iriwHistory(1, 0, 1, 0), tsoModel()));
  EXPECT_TRUE(allowed(iriwHistory(1, 0, 1, 0), rmoModel()));
  EXPECT_TRUE(allowed(iriwHistory(1, 0, 1, 0), alphaModel()));
  EXPECT_TRUE(allowed(iriwHistory(1, 1, 1, 1), scModel()));
}

TEST(DependentReads, RmoOrdersThemAlphaDoesNot) {
  using litmus::dependentReadHistory;
  // Message passing where the second read is data-dependent: RMO keeps the
  // (1, 0) outcome forbidden; Alpha allows it (its defining relaxation).
  EXPECT_FALSE(allowed(dependentReadHistory(1, 0), rmoModel()));
  EXPECT_TRUE(allowed(dependentReadHistory(1, 0), alphaModel()));
  EXPECT_FALSE(allowed(dependentReadHistory(1, 0), scModel()));
  EXPECT_TRUE(allowed(dependentReadHistory(1, 1), rmoModel()));
}

}  // namespace
}  // namespace jungle
