// Tests for single global lock atomicity (§6.2): SGLA is weaker than
// parametrized opacity (Theorem 6) and admits behaviors — non-transactional
// operations observing a transaction's intermediate state — that
// parametrized opacity forbids.
#include <gtest/gtest.h>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

bool sgla(const History& h, const MemoryModel& m,
          bool enforceRealTime = true) {
  SglaOptions opts;
  opts.enforceTxRealTime = enforceRealTime;
  CheckResult r = checkSgla(h, m, kRegisters, opts);
  EXPECT_FALSE(r.inconclusive);
  return r.satisfied;
}

bool popaque(const History& h, const MemoryModel& m) {
  return checkParametrizedOpacity(h, m, kRegisters).satisfied;
}

// -------------------------------------------------------------- basics

TEST(Sgla, EmptyAndTrivialHistories) {
  EXPECT_TRUE(sgla(History{}, scModel()));
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).read(0, 0, 1).commit(0);
  EXPECT_TRUE(sgla(b.build(), scModel()));
}

TEST(Sgla, TransactionsRemainAtomicToEachOther) {
  // T1 observes T0's intermediate state: forbidden even under SGLA.
  HistoryBuilder b;
  b.start(0).start(1);
  b.write(0, 0, 1);
  b.read(1, 0, 1);  // transactional read of the intermediate value
  b.write(0, 1, 1);
  b.read(1, 1, 0);
  b.commit(0).commit(1);
  EXPECT_FALSE(sgla(b.build(), scModel()));
  EXPECT_FALSE(sgla(b.build(), rmoModel()));
}

TEST(Sgla, NonTransactionalWriteMaySplitATransactionsReads) {
  // Figure 2(c) with (a, r1, r2) = (2, 0, 2): the non-transactional
  // z := x lands *between* the transaction's two reads of z.  Parametrized
  // opacity forbids r1 ≠ r2 (§1, requirement 3); SGLA allows it — the
  // write simply enters the critical section.
  History h = litmus::fig2cHistory(2, 0, 2);
  EXPECT_FALSE(popaque(h, scModel()));
  EXPECT_TRUE(sgla(h, scModel()));
  EXPECT_TRUE(sgla(h, rmoModel()));
}

TEST(Sgla, UncommittedEffectsStayInvisibleToNtReads) {
  // Figure 6's TM defers all updates to commit, and the formal semantics
  // agrees: a non-transactional read inside the critical section still
  // observes committed state, so Figure 1's (1, 0) and Figure 2(c)'s a = 1
  // stay forbidden even under SGLA.
  EXPECT_FALSE(sgla(litmus::fig1History(1, 0), scModel()));
  EXPECT_FALSE(sgla(litmus::fig2cHistory(1, 1, 1), scModel()));
}

TEST(Sgla, NtWriteSplitsTwoTransactionalReadsMinimal) {
  // Minimal witness of SGLA's extra behavior: T reads x = 0 then x = 5
  // because p1's plain write x := 5 ran inside the section.
  HistoryBuilder b;
  b.start(0).read(0, 0, 0);
  b.write(1, 0, 5);
  b.read(0, 0, 5).commit(0);
  History h = b.build();
  EXPECT_FALSE(popaque(h, scModel()));
  EXPECT_TRUE(sgla(h, scModel()));
}

TEST(Sgla, StillRejectsImpossibleValues) {
  // x only ever takes values 0, 1, 2 — a read of 7 has no explanation.
  History h = litmus::fig2cHistory(7, 0, 0);
  EXPECT_FALSE(sgla(h, scModel()));
  EXPECT_FALSE(sgla(h, rmoModel()));
}

TEST(Sgla, AbortedTransactionWritesInvisibleOutside) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 9).abort(0);
  b.read(1, 0, 9);  // after the abort — must not see 9
  EXPECT_FALSE(sgla(b.build(), scModel()));

  HistoryBuilder ok;
  ok.start(0).write(0, 0, 9).abort(0);
  ok.read(1, 0, 0);
  EXPECT_TRUE(sgla(ok.build(), scModel()));
}

TEST(Sgla, NtWriteVisibleInsideOpenTransaction) {
  // p1 writes x non-transactionally while p0's transaction is open; the
  // transaction may then read that value (the write entered the section).
  HistoryBuilder b;
  b.start(0);
  b.write(1, 0, 5);
  b.read(0, 0, 5);
  b.commit(0);
  EXPECT_TRUE(sgla(b.build(), scModel()));
}

TEST(Sgla, MemoryModelStillGovernsNtOps) {
  // Figure 2(b) message passing, purely non-transactional: SGLA inherits
  // the model's verdicts exactly (there are no transactions).
  EXPECT_FALSE(sgla(litmus::fig2bHistory(1, 0), scModel()));
  EXPECT_FALSE(sgla(litmus::fig2bHistory(1, 0), tsoModel()));
  EXPECT_TRUE(sgla(litmus::fig2bHistory(1, 0), psoModel()));
  EXPECT_TRUE(sgla(litmus::fig2bHistory(1, 0), rmoModel()));
  EXPECT_TRUE(sgla(litmus::fig2bHistory(0, 0), scModel()));
}

// ------------------------------------------------------- lock semantics

TEST(Sgla, ReleaseFencesPriorOps) {
  // p1's nt write of y precedes p1's transaction; it may move into the
  // critical section but not past it: p0's later transaction must see it.
  HistoryBuilder b;
  b.write(1, 1, 3);                      // nt y := 3
  b.start(1).write(1, 0, 1).commit(1);   // T of p1
  b.start(0).read(0, 1, 0).commit(0);    // later T reads y = 0?
  // With real-time order T(p1) ≺ T(p0), y = 0 is unreadable: the nt write
  // cannot move past p1's commit.
  EXPECT_FALSE(sgla(b.build(), rmoModel()));

  HistoryBuilder ok;
  ok.write(1, 1, 3);
  ok.start(1).write(1, 0, 1).commit(1);
  ok.start(0).read(0, 1, 3).commit(0);
  EXPECT_TRUE(sgla(ok.build(), rmoModel()));
}

TEST(Sgla, AcquireFencesLaterOps) {
  // p1's nt read follows p1's transaction; it cannot move before the
  // transaction's start, so it must see what the transaction wrote.
  HistoryBuilder b;
  b.start(1).write(1, 0, 4).commit(1);
  b.read(1, 0, 0);  // nt read of x after own transaction
  EXPECT_FALSE(sgla(b.build(), rmoModel()));

  HistoryBuilder ok;
  ok.start(1).write(1, 0, 4).commit(1);
  ok.read(1, 0, 4);
  EXPECT_TRUE(sgla(ok.build(), rmoModel()));
}

TEST(Sgla, RealTimeOptionControlsCrossProcessOrder) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).read(1, 0, 0).commit(1);  // stale read, strictly later
  EXPECT_FALSE(sgla(b.build(), scModel(), /*enforceRealTime=*/true));
  EXPECT_TRUE(sgla(b.build(), scModel(), /*enforceRealTime=*/false));
}

// ------------------------------------------------------------ Theorem 6

TEST(Theorem6, ParametrizedOpacityImpliesSgla) {
  // Over a deterministic family of small histories and several models:
  // whenever parametrized opacity holds, SGLA holds.
  std::vector<History> family;
  for (Word v = 0; v <= 2; ++v) {
    family.push_back(litmus::fig3History(v, 1));
    for (Word r = 0; r <= 2; ++r) {
      family.push_back(litmus::fig1History(v, r));
      family.push_back(litmus::fig2bHistory(v, r));
      family.push_back(litmus::fig2cHistory(v, r, r));
      family.push_back(litmus::fig2aHistory(v, r));
    }
  }
  int implications = 0;
  const std::vector<const MemoryModel*> models{&scModel(), &tsoModel(),
                                               &rmoModel(), &alphaModel()};
  for (const History& h : family) {
    for (const MemoryModel* m : models) {
      if (popaque(h, *m)) {
        EXPECT_TRUE(sgla(h, *m)) << m->name();
        ++implications;
      }
    }
  }
  EXPECT_GT(implications, 20);  // the family must actually exercise this
}

TEST(Theorem6, SglaStrictlyWeaker) {
  // At least one (history, model) pair is SGLA but not parametrized-opaque.
  History h = litmus::fig2cHistory(2, 0, 2);
  EXPECT_TRUE(sgla(h, scModel()));
  EXPECT_FALSE(popaque(h, scModel()));
}

// --------------------------------------------------------- explanations

TEST(SglaExplanation, ViolationsCarryANonEmptyExplanation) {
  // The SGLA checker reports the deepest dead end just like the opacity
  // family: the explanation names the scheduled prefix and the blockers.
  HistoryBuilder atomicity;
  atomicity.start(0).start(1);
  atomicity.write(0, 0, 1);
  atomicity.read(1, 0, 1);
  atomicity.write(0, 1, 1);
  atomicity.read(1, 1, 0);
  atomicity.commit(0).commit(1);

  const std::vector<History> violations{
      atomicity.build(),
      litmus::fig2cHistory(7, 0, 0),   // impossible value
      litmus::fig1History(1, 0),       // intermediate state via nt read
  };
  for (const History& h : violations) {
    const CheckResult r = checkSgla(h, scModel(), kRegisters);
    ASSERT_FALSE(r.satisfied);
    EXPECT_FALSE(r.inconclusive);
    EXPECT_FALSE(r.explanation.empty());
    EXPECT_NE(r.explanation.find("dead end"), std::string::npos)
        << r.explanation;
  }
}

TEST(SglaExplanation, NamesAnIllegalInstance) {
  // A read of a value nobody ever writes: some blocker must say the
  // instance is illegal in the current state.
  const CheckResult r =
      checkSgla(litmus::fig2cHistory(7, 0, 0), scModel(), kRegisters);
  ASSERT_FALSE(r.satisfied);
  EXPECT_NE(r.explanation.find("illegal"), std::string::npos)
      << r.explanation;
}

TEST(SglaExplanation, EmptyOnSuccess) {
  const CheckResult r =
      checkSgla(litmus::fig2cHistory(2, 0, 2), scModel(), kRegisters);
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(r.explanation.empty());
}

// ------------------------------------------------------------- witness

TEST(SglaWitness, IsTransactionallySequentialAndLegal) {
  History h = litmus::fig2cHistory(2, 0, 2);
  CheckResult r = checkSgla(h, scModel(), kRegisters);
  ASSERT_TRUE(r.satisfied);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->size(), h.size());
}

}  // namespace
}  // namespace jungle
