// The runtime-verification subsystem tested at every layer: the SPSC ring
// under producer/consumer stress (run under TSan by the monitor-smoke CI
// job), the producer-pushed gap-marker protocol, the stream checker's
// white-box contracts (bounded window, escalation verdicts, the drop- and
// quiescence-gating that keeps lossy runs honest), and the end-to-end
// monitor: clean TMs produce zero violations, an injected corrupted read
// is caught, shrunk, and its persisted .hist snapshot round-trips through
// the parser as a still-violating history.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "monitor/monitor.hpp"
#include "opacity/popacity.hpp"
#include "sim/memory_policy.hpp"
#include "tm/runtime.hpp"

namespace jungle::monitor {
namespace {

// ------------------------------------------------------------------ ring

TEST(EventRing, PushPopRoundTripKeepsUnitsIntact) {
  EventRing ring(64);
  const MonitorEvent unit[3] = {
      {10, kNoObject, EventKind::kTxStart, 0},
      {10, 2, EventKind::kTxWrite, 7},
      {11, kNoObject, EventKind::kTxCommit, 0},
  };
  ASSERT_TRUE(ring.tryPushUnit(unit, 3));
  MonitorEvent out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.kind, unit[i].kind);
    EXPECT_EQ(out.ticket, unit[i].ticket);
  }
  EXPECT_FALSE(ring.tryPop(out));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, FullRingDropsWholeUnitAndCounts) {
  EventRing ring(4);
  const MonitorEvent ev{1, 0, EventKind::kNtWrite, 5};
  MonitorEvent unit[3] = {ev, ev, ev};
  ASSERT_TRUE(ring.tryPushUnit(unit, 3));
  // One slot left: a 3-event unit must be rejected all-or-nothing.
  ASSERT_FALSE(ring.tryPushUnit(unit, 3));
  EXPECT_EQ(ring.pushed(), 3u);
  EXPECT_EQ(ring.dropped(), 3u);
  EXPECT_EQ(ring.droppedUnits(), 1u);
  // Meta-traffic (a gap marker) must not inflate the loss counters.
  ASSERT_FALSE(ring.tryPushUnit(unit, 3, /*countDrop=*/false));
  EXPECT_EQ(ring.droppedUnits(), 1u);
}

// SPSC stress with a deliberately lagging consumer: every event the
// consumer sees must be one the producer pushed, in order, unit-aligned,
// and attempts == delivered units + dropped units.  This is the test the
// monitor-smoke CI job runs under TSan.
TEST(EventRing, ConcurrentStressStaysUnitAlignedUnderDrops) {
  constexpr std::uint64_t kUnits = 50000;
  EventRing ring(128);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kUnits; ++i) {
      const MonitorEvent unit[2] = {
          {i + 1, 0, EventKind::kTxStart, i},
          {i + 1, kNoObject, EventKind::kTxCommit, i},
      };
      ring.tryPushUnit(unit, 2);
    }
  });
  std::uint64_t delivered = 0;
  std::uint64_t lastSeq = 0;
  bool aligned = true;
  bool ordered = true;
  std::thread consumer([&] {
    MonitorEvent ev;
    bool inUnit = false;
    std::uint64_t spins = 0;
    while (true) {
      if (!ring.tryPop(ev)) {
        if (++spins > 2'000'000) break;  // producer long gone
        std::this_thread::yield();
        continue;
      }
      spins = 0;
      if (!inUnit) {
        if (ev.kind != EventKind::kTxStart) aligned = false;
        if (ev.value < lastSeq) ordered = false;
        lastSeq = ev.value;
        inUnit = true;
      } else {
        if (ev.kind != EventKind::kTxCommit || ev.value != lastSeq) {
          aligned = false;
        }
        inUnit = false;
        ++delivered;
      }
    }
    if (inUnit) aligned = false;
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(aligned);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(delivered + ring.droppedUnits(), kUnits);
  EXPECT_GT(delivered, 0u);
}

// ----------------------------------------------------------- gap markers

TEST(EventCapture, GapMarkerLandsAtExactLossPositionWithExactCount) {
  CaptureOptions co;
  co.ringCapacity = 8;
  EventCapture cap(1, co);
  EventRing& ring = cap.ring(0);

  const auto flushTx = [&] {
    cap.beginUnit(0);
    std::vector<MonitorEvent> buf;
    buf.push_back({cap.claimTicket(), kNoObject, EventKind::kTxStart, 0});
    buf.push_back({0, 3, EventKind::kTxWrite, 9});
    cap.flushUnit(0, buf, EventKind::kTxCommit);
  };

  flushTx();  // 3 events, fits
  flushTx();  // 6 events, fits
  flushTx();  // dropped (would need 9 > 8)
  flushTx();  // dropped
  EXPECT_EQ(ring.droppedUnits(), 2u);

  // Drain; the next flush must push the marker first, carrying the exact
  // producer-side drop count.
  MonitorEvent ev;
  while (ring.tryPop(ev)) {
  }
  flushTx();
  ASSERT_TRUE(ring.tryPop(ev));
  EXPECT_EQ(ev.kind, EventKind::kGapMarker);
  EXPECT_EQ(ev.value, 2u);
  ASSERT_TRUE(ring.tryPop(ev));
  EXPECT_EQ(ev.kind, EventKind::kTxStart);
  // Interior events inherit the start ticket; announcement is cleared.
  ASSERT_TRUE(ring.tryPop(ev));
  EXPECT_EQ(ev.kind, EventKind::kTxWrite);
  EXPECT_NE(ev.ticket, 0u);
  EXPECT_EQ(ring.flushEpoch(), kNoEpoch);
}

// -------------------------------------------------- stream checker (wb)

StreamUnit txUnit(ProcessId pid, std::uint64_t base,
                  std::vector<MonitorEvent> body,
                  StreamUnit::Kind kind = StreamUnit::Kind::kCommittedTx) {
  StreamUnit u;
  u.kind = kind;
  u.pid = pid;
  u.epoch = base;
  u.events.push_back({base, kNoObject, EventKind::kTxStart, 0});
  for (MonitorEvent e : body) {
    e.ticket = base;
    u.events.push_back(e);
  }
  u.events.push_back({base + 1, kNoObject,
                      kind == StreamUnit::Kind::kAbortedTx
                          ? EventKind::kTxAbort
                          : EventKind::kTxCommit,
                      0});
  return u;
}

StreamOptions smallOpts() {
  StreamOptions so;
  so.model = &scModel();
  so.gcRetain = 4;
  so.settleUnits = 2;
  so.recheckTimeout = std::chrono::milliseconds(2000);
  return so;
}

TEST(StreamChecker, CleanSequentialStreamStaysOnFastPath) {
  StreamChecker c(smallOpts());
  for (std::uint64_t i = 0; i < 50; ++i) {
    c.feed(txUnit(0, 10 * (i + 1),
                  {{0, 1, EventKind::kTxWrite, static_cast<Word>(i + 1)},
                   {0, 1, EventKind::kTxRead, static_cast<Word>(i + 1)}}));
  }
  c.finish();
  EXPECT_EQ(c.stats().rechecks, 0u);
  EXPECT_EQ(c.stats().violations, 0u);
  EXPECT_EQ(c.stats().opsChecked, 100u);
}

TEST(StreamChecker, WindowStaysBoundedByGcRetain) {
  StreamChecker c(smallOpts());
  for (std::uint64_t i = 0; i < 20000; ++i) {
    c.feed(txUnit(0, 10 * (i + 1),
                  {{0, 2, EventKind::kTxWrite, static_cast<Word>(i % 97)}}));
  }
  c.finish();
  EXPECT_LE(c.stats().peakWindowUnits, smallOpts().gcRetain + 1);
  EXPECT_GT(c.stats().gcUnits, 19000u);
  EXPECT_EQ(c.stats().violations, 0u);
}

TEST(StreamChecker, ImpossibleReadConvictsAtFinish) {
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {{0, 1, EventKind::kTxWrite, 1}}));
  // Nobody ever writes 7: conclusively unserializable.
  c.feed(txUnit(1, 20, {{0, 1, EventKind::kTxRead, 7}}));
  for (std::uint64_t i = 0; i < 8; ++i) {
    c.feed(txUnit(0, 30 + 10 * i, {{0, 2, EventKind::kTxWrite, 5}}));
  }
  c.finish();
  EXPECT_GE(c.stats().rechecks, 1u);
  ASSERT_EQ(c.stats().violations, 1u);
  ASSERT_EQ(c.violations().size(), 1u);
  // The violation carries a shrunk repro that still violates the model.
  const History& shrunk = c.violations()[0].shrunk;
  ASSERT_GT(shrunk.size(), 0u);
  const CheckResult r = checkParametrizedOpacity(shrunk, scModel(), SpecMap{});
  EXPECT_FALSE(r.satisfied);
  EXPECT_FALSE(r.inconclusive);
}

TEST(StreamChecker, DropSuspectSuppressesConclusiveVerdicts) {
  StreamChecker c(smallOpts());
  c.setDropSuspect(true);
  c.feed(txUnit(0, 10, {{0, 1, EventKind::kTxWrite, 1}}));
  c.feed(txUnit(1, 20, {{0, 1, EventKind::kTxRead, 7}}));
  for (std::uint64_t i = 0; i < 8; ++i) {
    c.feed(txUnit(0, 30 + 10 * i, {{0, 2, EventKind::kTxWrite, 5}}));
  }
  c.finish();
  EXPECT_EQ(c.stats().violations, 0u);
  EXPECT_GE(c.stats().suppressedVerdicts, 1u);
}

TEST(StreamChecker, GapBeforeUnitDiscardsPendingConviction) {
  // Regression for the optimistic-TM hole: a confirmed conviction must die
  // if drop evidence arrives before a quiescent instant — the dropped unit
  // may be the window's missing explanation (a writer can publish at its
  // commit point yet count its unit's loss arbitrarily later).
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {{0, 1, EventKind::kTxWrite, 1}}));
  c.feed(txUnit(1, 20, {{0, 1, EventKind::kTxRead, 7}}));
  std::uint64_t next = 30;
  for (int i = 0; i < 100 && !c.hasPendingConviction(); ++i, next += 10) {
    c.feed(txUnit(0, next, {{0, 2, EventKind::kTxWrite, 5}}));
  }
  ASSERT_TRUE(c.hasPendingConviction());
  StreamUnit gapped =
      txUnit(0, next, {{0, 2, EventKind::kTxWrite, 6}});
  gapped.gapBefore = true;
  gapped.dropsCovered = 1;
  c.feed(std::move(gapped));
  EXPECT_FALSE(c.hasPendingConviction());
  c.finish();
  EXPECT_EQ(c.stats().violations, 0u);
  EXPECT_GE(c.stats().suppressedVerdicts, 1u);
}

TEST(StreamChecker, QuiescentInstantPublishesPendingConviction) {
  StreamChecker c(smallOpts());
  c.feed(txUnit(0, 10, {{0, 1, EventKind::kTxWrite, 1}}));
  c.feed(txUnit(1, 20, {{0, 1, EventKind::kTxRead, 7}}));
  std::uint64_t next = 30;
  for (int i = 0; i < 100 && !c.hasPendingConviction(); ++i, next += 10) {
    c.feed(txUnit(0, next, {{0, 2, EventKind::kTxWrite, 5}}));
  }
  ASSERT_TRUE(c.hasPendingConviction());
  c.onQuiescent();
  EXPECT_FALSE(c.hasPendingConviction());
  EXPECT_EQ(c.stats().violations, 1u);
}

TEST(StreamChecker, InconclusiveEscalationNeverConvicts) {
  StreamOptions so = smallOpts();
  so.recheckMaxExpansions = 1;  // every engine run exhausts its budget
  StreamChecker c(so);
  c.feed(txUnit(0, 10, {{0, 1, EventKind::kTxWrite, 1}}));
  c.feed(txUnit(1, 20, {{0, 1, EventKind::kTxRead, 7}}));
  for (std::uint64_t i = 0; i < 8; ++i) {
    c.feed(txUnit(0, 30 + 10 * i, {{0, 2, EventKind::kTxWrite, 5}}));
  }
  c.finish();
  EXPECT_EQ(c.stats().violations, 0u);
  EXPECT_GE(c.stats().inconclusiveRechecks, 1u);
}

TEST(StreamChecker, WindowHistoryInstallsPrefixInitializer) {
  StreamChecker c(smallOpts());
  // Window write then a conflicting read: mode switches to buffering and
  // the window history must interleave by ticket with pid projections.
  c.feed(txUnit(0, 10, {{0, 5, EventKind::kTxWrite, 3}}));
  c.feed(txUnit(1, 20, {{0, 5, EventKind::kTxRead, 4}}));
  const History h = c.windowHistory(nullptr);
  HistoryAnalysis a(h);
  EXPECT_TRUE(a.wellFormed()) << h.toString();
  EXPECT_EQ(a.transactions().size(), 2u);
}

// ------------------------------------------------------------ end-to-end

TEST(TmMonitor, CleanRunsOfEveryTmKindProduceNoViolations) {
  for (TmKind kind : allTmKinds()) {
    NativeMemory mem(runtimeMemoryWords(kind, 16));
    auto tm = makeNativeRuntime(kind, mem, 16, 4);
    TmMonitor mon(*tm, 4);
    WorkloadOptions w;
    w.threads = 4;
    w.numVars = 16;
    w.opsPerThread = 1500;
    w.seed = 99;
    runMonitoredWorkload(mon.runtime(), w);
    mon.stop();
    EXPECT_TRUE(mon.ok()) << tmKindName(kind) << ": "
                          << (mon.violations().empty()
                                  ? ""
                                  : mon.violations()[0].description);
    EXPECT_GT(mon.stats().unitsMerged, 0u) << tmKindName(kind);
  }
}

TEST(TmMonitor, InjectedCorruptReadIsCaughtShrunkAndPersisted) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "jungle_monitor_test";
  std::filesystem::remove_all(dir);

  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 16));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 16, 4);
  MonitorOptions mo;
  mo.capture.injectBug = InjectedBug::kCorruptTxRead;
  mo.snapshotDir = dir.string();
  TmMonitor mon(*tm, 4, mo);
  WorkloadOptions w;
  w.threads = 4;
  w.numVars = 16;
  w.opsPerThread = 1200;
  w.seed = 7;
  // Paced: under saturation drops a corruption is indistinguishable from a
  // dropped writer's value and the monitor suppresses the verdict by
  // design; the self-test must run where conviction is honestly possible.
  w.pace = std::chrono::microseconds(5);
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();

  ASSERT_FALSE(mon.ok());
  const MonitorViolation& v = mon.violations()[0];
  ASSERT_GT(v.shrunk.size(), 0u);
  ASSERT_FALSE(v.file.empty());

  // The snapshot must round-trip through the parser as a history that
  // still conclusively violates the claimed model.
  std::ifstream in(v.file);
  ASSERT_TRUE(in.good()) << v.file;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = litmus::parseHistory(buf.str());
  ASSERT_TRUE(parsed) << parsed.error;
  const CheckResult r =
      checkParametrizedOpacity(*parsed.history, mon.model(), SpecMap{});
  EXPECT_FALSE(r.satisfied);
  EXPECT_FALSE(r.inconclusive);

  std::filesystem::remove_all(dir);
}

TEST(TmMonitor, TinyRingsUnderFullSpeedNeverFalselyConvict) {
  // Drop-heavy regression: tiny rings at full speed exercise the gap
  // marker, cooldown, and quiescence machinery end to end; an honest
  // monitor reports resyncs and suppressions, never a violation.
  NativeMemory mem(runtimeMemoryWords(TmKind::kTl2Weak, 32));
  auto tm = makeNativeRuntime(TmKind::kTl2Weak, mem, 32, 4);
  MonitorOptions mo;
  mo.capture.ringCapacity = 256;
  mo.recheckTimeout = std::chrono::milliseconds(250);
  TmMonitor mon(*tm, 4, mo);
  WorkloadOptions w;
  w.threads = 4;
  w.numVars = 32;
  w.opsPerThread = 20000;
  w.seed = 0x5eed;
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();
  EXPECT_TRUE(mon.ok()) << mon.violations()[0].description;
  EXPECT_GT(mon.stats().unitsDropped, 0u)
      << "stress too gentle: no drops, gap machinery untested";
}

}  // namespace
}  // namespace jungle::monitor
