// Core semantics of the opacity / parametrized-opacity / strict-
// serializability checkers, cross-validated against the reference oracles
// of history/sequential.hpp.
#include <gtest/gtest.h>

#include "history/sequential.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "spec/counter_spec.hpp"
#include "spec/queue_spec.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

// ------------------------------------------------------------ pure opacity

TEST(Opacity, EmptyHistoryIsOpaque) {
  EXPECT_TRUE(checkOpacity(History{}, kRegisters).satisfied);
}

TEST(Opacity, SingleCommittedTransaction) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).read(0, 0, 1).commit(0);
  EXPECT_TRUE(checkOpacity(b.build(), kRegisters).satisfied);
}

TEST(Opacity, TransactionReadingItsOwnStaleValueIsNotOpaque) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).read(0, 0, 0).commit(0);
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);
}

TEST(Opacity, RealTimeOrderBetweenTransactionsIsEnforced) {
  // T0 commits x := 1 strictly before T1 starts; T1 must not read x = 0.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).read(1, 0, 0).commit(1);
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);

  HistoryBuilder good;
  good.start(0).write(0, 0, 1).commit(0);
  good.start(1).read(1, 0, 1).commit(1);
  EXPECT_TRUE(checkOpacity(good.build(), kRegisters).satisfied);
}

TEST(Opacity, OverlappingTransactionsMaySerializeEitherWay) {
  HistoryBuilder b;
  b.start(0).start(1).write(0, 0, 1).commit(0).read(1, 0, 0).commit(1);
  // T1 read x = 0: serialize T1 before T0.
  EXPECT_TRUE(checkOpacity(b.build(), kRegisters).satisfied);
}

TEST(Opacity, AbortedTransactionMustSeeConsistentState) {
  // The classic opacity motivation: an aborted transaction that observed
  // x = 1, y = 0 where x and y are only ever written together.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).write(0, 1, 1).commit(0);
  b.start(1).read(1, 0, 1).read(1, 1, 0).abort(1);
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);
  // Strict serializability ignores the aborted observer.
  EXPECT_TRUE(checkStrictSerializability(b.build(), kRegisters).satisfied);
}

TEST(Opacity, AbortedWritesAreInvisible) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 9).abort(0);
  b.start(1).read(1, 0, 9).commit(1);
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);

  HistoryBuilder good;
  good.start(0).write(0, 0, 9).abort(0);
  good.start(1).read(1, 0, 0).commit(1);
  EXPECT_TRUE(checkOpacity(good.build(), kRegisters).satisfied);
}

TEST(Opacity, LiveTransactionSeesItsOwnWrites) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 3).read(0, 0, 3);
  EXPECT_TRUE(checkOpacity(b.build(), kRegisters).satisfied);
}

TEST(Opacity, TwoLiveTransactionsCannotBothSeeEachOther) {
  // T0 reads T1's write and vice versa: no serialization explains both.
  HistoryBuilder b;
  b.start(0).start(1);
  b.write(0, 0, 1).write(1, 1, 1);
  b.read(0, 1, 1).read(1, 0, 1);
  b.commit(0).commit(1);
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);
}

TEST(Opacity, WriteSkewIsOpaqueForRegisters) {
  // Snapshot-isolation-style write skew *is* serializable when each
  // transaction writes a different variable it did not read… here both
  // read both vars; with register semantics one order must explain reads.
  HistoryBuilder b;
  b.start(0).start(1);
  b.read(0, 0, 0).read(1, 1, 0);
  b.write(0, 1, 1).write(1, 0, 1);
  b.commit(0).commit(1);
  // T0 reads x=0 writes y=1; T1 reads y=0 writes x=1.  Any order makes the
  // second transaction's read stale: not opaque.
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);
}

// ------------------------------------------------- witness cross-checking

TEST(Witness, SatisfiesTheOracleDefinitions) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.read(1, 0, 1);
  b.start(1).read(1, 0, 1).commit(1);
  History h = b.build();
  CheckResult r = checkParametrizedOpacity(h, scModel(), kRegisters);
  ASSERT_TRUE(r.satisfied);
  ASSERT_TRUE(r.witness.has_value());
  const History& s = *r.witness;
  EXPECT_EQ(s.size(), h.size());
  EXPECT_TRUE(isSequential(s));
  EXPECT_TRUE(everyOperationLegal(s, kRegisters));
  HistoryAnalysis a(h);
  EXPECT_TRUE(respectsOrder(s, a.realTimePairs()));
  EXPECT_TRUE(respectsOrder(s, requiredViewPairs(scModel(), h, a)));
}

TEST(Witness, JunkScWitnessContainsTheHavocs) {
  HistoryBuilder b;
  b.write(0, 0, 1);
  b.read(1, 0, 1);
  History h = b.build();
  CheckResult r = checkParametrizedOpacity(h, junkScModel(), kRegisters);
  ASSERT_TRUE(r.satisfied);
  EXPECT_EQ(r.witness->size(), 3u);  // havoc + write + read
}

// ------------------------------------------------- richer object semantics

TEST(RicherObjects, CounterIncrementsCommute) {
  SpecMap specs;
  specs.assign(0, std::make_shared<CounterSpec>(0));
  // Two overlapping transactions increment; a later one reads the sum.
  HistoryBuilder b;
  b.start(0).start(1);
  b.cmd(0, 0, cmdCtrInc(2)).cmd(1, 0, cmdCtrInc(3));
  b.commit(0).commit(1);
  b.start(2).cmd(2, 0, cmdCtrRead(5)).commit(2);
  EXPECT_TRUE(checkOpacity(b.build(), specs).satisfied);
}

TEST(RicherObjects, CounterWrongSumRejected) {
  SpecMap specs;
  specs.assign(0, std::make_shared<CounterSpec>(0));
  HistoryBuilder b;
  b.start(0).cmd(0, 0, cmdCtrInc(2)).commit(0);
  b.start(2).cmd(2, 0, cmdCtrRead(5)).commit(2);
  EXPECT_FALSE(checkOpacity(b.build(), specs).satisfied);
}

TEST(RicherObjects, QueueTransactionsSerialize) {
  SpecMap specs;
  specs.assign(0, std::make_shared<QueueSpec>());
  HistoryBuilder b;
  b.start(0).cmd(0, 0, cmdEnqueue(1)).cmd(0, 0, cmdEnqueue(2)).commit(0);
  b.start(1).cmd(1, 0, cmdDequeue(1)).commit(1);
  b.start(2).cmd(2, 0, cmdDequeue(2)).commit(2);
  EXPECT_TRUE(checkOpacity(b.build(), specs).satisfied);

  HistoryBuilder bad;
  bad.start(0).cmd(0, 0, cmdEnqueue(1)).cmd(0, 0, cmdEnqueue(2)).commit(0);
  bad.start(1).cmd(1, 0, cmdDequeue(2)).commit(1);
  EXPECT_FALSE(checkOpacity(bad.build(), specs).satisfied);
}

// ------------------------------------------------- strict serializability

TEST(StrictSerializability, WeakerThanOpacityNeverStronger) {
  // Property: on a set of structured random-ish histories, opacity implies
  // strict serializability.
  for (int seed = 0; seed < 30; ++seed) {
    HistoryBuilder b;
    // Two transactions and a non-transactional observer with values chosen
    // from the seed — a small deterministic family.
    const Word w1 = seed % 3;
    const Word r1 = (seed / 3) % 3;
    const Word r2 = (seed / 9) % 3;
    b.start(0).write(0, 0, w1).commit(0);
    b.start(1).read(1, 0, r1);
    (seed % 2 == 0 ? b.commit(1) : b.abort(1));
    b.read(2, 0, r2);
    History h = b.build();
    const bool opaque = checkOpacity(h, kRegisters).satisfied;
    const bool ss = checkStrictSerializability(h, kRegisters).satisfied;
    if (opaque) {
      EXPECT_TRUE(ss) << "seed=" << seed;
    }
  }
}

TEST(StrictSerializability, IgnoresLiveTransactions) {
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).read(1, 0, 7);  // live transaction with an impossible read
  EXPECT_FALSE(checkOpacity(b.build(), kRegisters).satisfied);
  EXPECT_TRUE(checkStrictSerializability(b.build(), kRegisters).satisfied);
}

// ------------------------------------------------- parametrized monotonic

TEST(Monotonicity, ScOpacityImpliesWeakerModelOpacity) {
  // SC's required view is a superset of every other model's: any history
  // opaque under SC must be opaque under every model (τ-identity models).
  for (int v1 = 0; v1 <= 1; ++v1) {
    for (int v2 = 0; v2 <= 1; ++v2) {
      HistoryBuilder b;
      b.write(0, 0, 1);
      b.read(1, 0, static_cast<Word>(v1));
      b.write(0, 1, 1);
      b.read(1, 1, static_cast<Word>(v2));
      History h = b.build();
      const bool underSc =
          checkParametrizedOpacity(h, scModel(), kRegisters).satisfied;
      const std::vector<const MemoryModel*> weaker{
          &tsoModel(), &psoModel(), &rmoModel(), &alphaModel()};
      for (const MemoryModel* m : weaker) {
        const bool underM =
            checkParametrizedOpacity(h, *m, kRegisters).satisfied;
        if (underSc) {
          EXPECT_TRUE(underM) << m->name();
        }
      }
    }
  }
}

TEST(Inconclusive, TinyBudgetIsReported) {
  HistoryBuilder b;
  for (int i = 0; i < 6; ++i) {
    b.write(0, static_cast<ObjectId>(i), 1);
    b.read(1, static_cast<ObjectId>(i), 0);
  }
  SearchLimits limits;
  limits.maxExpansions = 1;
  CheckResult r =
      checkParametrizedOpacity(b.build(), rmoModel(), kRegisters, limits);
  EXPECT_FALSE(r.satisfied);
  EXPECT_TRUE(r.inconclusive);
}

}  // namespace
}  // namespace jungle
