// API-contract enforcement: misuse of the TM and framework APIs must trip
// the always-on checks rather than corrupt state (death tests).
#include <gtest/gtest.h>

#include "sim/memory_policy.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/runtime.hpp"
#include "tm/txvar.hpp"
#include "tm/versioned_write_tm.hpp"

namespace jungle {
namespace {

using GLock = GlobalLockTm<NativeMemory>;

TEST(ApiContracts, TxReadOutsideTransactionDies) {
  NativeMemory mem(GLock::memoryWords(2));
  GLock tm(mem, 2);
  auto t = tm.makeThread(0);
  EXPECT_DEATH((void)tm.txRead(t, 0), "check failed");
}

TEST(ApiContracts, NestedStartDies) {
  NativeMemory mem(GLock::memoryWords(2));
  GLock tm(mem, 2);
  auto t = tm.makeThread(0);
  tm.txStart(t);
  EXPECT_DEATH(tm.txStart(t), "check failed");
}

TEST(ApiContracts, NtWriteInsideTransactionDies) {
  NativeMemory mem(GLock::memoryWords(2));
  GLock tm(mem, 2);
  auto t = tm.makeThread(0);
  tm.txStart(t);
  EXPECT_DEATH(tm.ntWrite(t, 0, 1), "check failed");
}

TEST(ApiContracts, OutOfRangeVariableDies) {
  NativeMemory mem(GLock::memoryWords(2));
  GLock tm(mem, 2);
  auto t = tm.makeThread(0);
  EXPECT_DEATH((void)tm.ntRead(t, 7), "check failed");
}

TEST(ApiContracts, CommitWithoutStartDies) {
  NativeMemory mem(GLock::memoryWords(2));
  GLock tm(mem, 2);
  auto t = tm.makeThread(0);
  EXPECT_DEATH((void)tm.txCommit(t), "check failed");
}

TEST(ApiContracts, VersionedWriteAcceptsFullWidthValues) {
  // The old packed encoding rejected values above 2^32 - 1; the two-word
  // scheme must take any 64-bit word like every other TM.
  using VW = VersionedWriteTm<NativeMemory>;
  NativeMemory mem(VW::memoryWords(2));
  VW tm(mem, 2);
  auto t = tm.makeThread(0);
  tm.ntWrite(t, 0, (Word{1} << 32) + 1);
  EXPECT_EQ(tm.ntRead(t, 0), (Word{1} << 32) + 1);
}

TEST(ApiContracts, InsufficientMemoryDies) {
  NativeMemory mem(1);  // needs numVars + 1
  EXPECT_DEATH((GLock{mem, 2}), "check failed");
}

TEST(ApiContracts, RuntimeRejectsUnknownProcess) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 2));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 2, 2);
  EXPECT_DEATH((void)tm->ntRead(5, 0), "check failed");
}

TEST(ApiContracts, VarSpaceExhaustionDies) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 1));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 1, 1);
  VarSpace space(*tm, 1);
  (void)space.alloc<Word>("only");
  EXPECT_DEATH((void)space.alloc<Word>("too-many"), "exhausted");
}

TEST(ApiContracts, PublishByNonOwnerDies) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 3));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 3, 2);
  PrivatizableRegion region(*tm, 2, {0, 1});
  ASSERT_TRUE(region.privatize(0));
  EXPECT_DEATH(region.publish(1), "non-owner");
}

}  // namespace
}  // namespace jungle
