// The fuzzing subsystem tested against itself: generator well-formedness
// and verdict mix, shrinker minimality, the differential oracle's clean
// run, the injected-engine-bug self-test (the harness must catch and
// shrink a mutated verdict), the inconclusive-exclusion regression
// (resource-limited verdicts are never violations), and the CheckResult
// telemetry contract across all four checker entry points.
#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/fuzz_driver.hpp"
#include "fuzz/shrinker.hpp"
#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"
#include "sim/memory_policy.hpp"
#include "theorems/conformance.hpp"
#include "tm/runtime.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

// ------------------------------------------------------------- generator

TEST(Generator, HistoriesAreWellFormedAndBothVerdictsOccur) {
  Rng rng(2026);
  int satisfied = 0, violated = 0;
  for (int i = 0; i < 200; ++i) {
    const fuzz::GeneratedInstance gen =
        fuzz::randomHistory(rng, fuzz::randomGenOptions(rng));
    HistoryAnalysis analysis(gen.history);
    ASSERT_TRUE(analysis.wellFormed()) << gen.history.toString();
    if (i < 60) {
      const CheckResult r =
          checkParametrizedOpacity(gen.history, scModel(), gen.specs);
      ASSERT_FALSE(r.inconclusive);
      (r.satisfied ? satisfied : violated) += 1;
    }
  }
  // The family must exercise both verdicts, or differential fuzzing
  // proves nothing.
  EXPECT_GT(satisfied, 5);
  EXPECT_GT(violated, 5);
}

// -------------------------------------------------------------- shrinker

TEST(Shrinker, MinimizesAViolatingHistoryToItsCore) {
  // The violation is one impossible read; everything else is chaff.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).read(0, 0, 1).commit(0);
  b.start(1).read(1, 1, 0).commit(1);
  b.write(2, 1, 3);
  b.read(2, 0, 5);  // impossible: nobody writes 5
  b.read(2, 1, 3);
  const History h = b.build();

  auto fails = [](const History& cand) {
    const CheckResult r = checkParametrizedOpacity(cand, scModel(), kRegisters);
    return !r.satisfied && !r.inconclusive;
  };
  ASSERT_TRUE(fails(h));

  const fuzz::ShrinkResult res = fuzz::shrinkHistory(h, fails);
  EXPECT_TRUE(fails(res.history));
  EXPECT_TRUE(HistoryAnalysis(res.history).wellFormed());
  // The single impossible read alone is a violating history.
  EXPECT_EQ(res.history.size(), 1u) << res.history.toString();
  EXPECT_GT(res.candidatesTried, 0u);
}

TEST(Shrinker, MergesObjectsWhenThatPreservesTheFailure) {
  // Violation: x1's committed writer orders against x0's reader both ways.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).write(0, 1, 1).commit(0);
  b.read(1, 0, 1);
  b.read(1, 1, 0);  // after x0=1 is observed, x1 must be 1 too
  const History h = b.build();
  auto fails = [](const History& cand) {
    const CheckResult r = checkParametrizedOpacity(cand, scModel(), kRegisters);
    return !r.satisfied && !r.inconclusive;
  };
  ASSERT_TRUE(fails(h));
  const fuzz::ShrinkResult res = fuzz::shrinkHistory(h, fails);
  EXPECT_TRUE(fails(res.history));
  EXPECT_LE(res.history.objects().size(), 1u) << res.history.toString();
}

// ---------------------------------------------------- differential oracle

TEST(FuzzDriver, EngineDiffCleanRunFindsNoDisagreements) {
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kEngineDiff;
  opts.seed = 7;
  opts.iterations = 40;
  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  EXPECT_EQ(report.iterationsRun, 40u);
  EXPECT_EQ(report.disagreements, 0u) << fuzz::formatReport(opts, report);
  EXPECT_GT(report.referenceChecks, 10u);  // the third voice must speak
}

TEST(FuzzDriver, HistoriesModePropertiesHold) {
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kHistories;
  opts.seed = 7;
  opts.iterations = 120;
  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  EXPECT_EQ(report.propertyViolations, 0u) << fuzz::formatReport(opts, report);
}

TEST(FuzzDriver, InjectedEngineBugIsCaughtAndShrunk) {
  // Mutation self-test: with the portfolio verdict mutated to accept any
  // history containing an aborted transaction, the differential oracle
  // must disagree, and the shrinker must reduce the repro to at most 4
  // transactions (the acceptance bar for counterexample quality).
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kEngineDiff;
  opts.seed = 42;
  opts.iterations = 60;
  opts.mutation = fuzz::Mutation::kAcceptAborted;
  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  ASSERT_GT(report.disagreements, 0u);
  ASSERT_FALSE(report.failures.empty());
  for (const fuzz::FuzzFailure& f : report.failures) {
    HistoryAnalysis analysis(f.shrunk);
    ASSERT_TRUE(analysis.wellFormed());
    EXPECT_LE(analysis.transactions().size(), 4u) << f.description;
    EXPECT_LE(f.shrunk.size(), 8u) << f.description;
  }
}

// ------------------------------------------------- traces mode (monitor)

TEST(FuzzDriver, TracesModeMonitorLegRunsShardedAndSerialInAgreement) {
  // The monitor leg's sharded-vs-serial differential: over enough traces
  // iterations the shard sampler must actually draw K > 1 runs, every
  // verdict on a stock TM must be clean, and — the property the
  // differential exists for — no sharded/serial disagreement may be
  // recorded.
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kTraces;
  opts.seed = 11;
  opts.iterations = 24;  // 6 land on the monitor leg (iter % 4 == 1)
  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  EXPECT_GT(report.monitorRuns, 0u);
  EXPECT_GT(report.monitorShardedRuns, 0u)
      << "shard sampler never drew K > 1: the differential leg is dead";
  EXPECT_EQ(report.monitorViolations, 0u) << fuzz::formatReport(opts, report);
  EXPECT_EQ(report.disagreements, 0u) << fuzz::formatReport(opts, report);
}

TEST(FuzzDriver, TracesModeMonitorLegDiversifiesWorkloads) {
  // Guard for the per-iteration workload diversity: across a modest run
  // the monitor leg must exercise clearly distinct event volumes (the old
  // leg's fixed 4..9-var, unpaced shape produced a narrow band).  Distinct
  // seeds -> distinct per-iteration draws is the cheap observable.
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kTraces;
  opts.iterations = 12;
  opts.seed = 21;
  const fuzz::FuzzReport a = fuzz::runFuzz(opts);
  opts.seed = 22;
  const fuzz::FuzzReport b = fuzz::runFuzz(opts);
  EXPECT_GT(a.monitorEvents, 0u);
  EXPECT_GT(b.monitorEvents, 0u);
  EXPECT_NE(a.monitorEvents, b.monitorEvents)
      << "two seeds produced identical capture volume: diversity draws "
         "are likely not being consumed";
}

TEST(FuzzDriver, MonitorShardedRunsCountOnlyShardedIterations) {
  // Accounting contract: monitorShardedRuns <= monitorRuns, and each
  // sharded iteration contributes exactly one run to the counter even
  // though it executes two monitors (sharded + serial replay).
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kTraces;
  opts.seed = 33;
  opts.iterations = 32;
  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  EXPECT_LE(report.monitorShardedRuns, report.monitorRuns);
  // iter % 4 == 1 -> 8 monitor iterations at 32 total.
  EXPECT_EQ(report.monitorRuns, 8u);
}

// ----------------------------------------- inconclusive is not a verdict

/// The adversarial family from test_engine_equivalence: a barren
/// lexicographic cone ahead of the unique witness, so tight deadlines
/// expire mid-search.
History hiddenWitnessHistory(std::size_t txs) {
  HistoryBuilder b;
  for (std::size_t i = 0; i < txs; ++i) b.start(static_cast<ProcessId>(i));
  b.read(0, 0, 1).write(0, 1, 9);
  b.read(1, 0, 0).write(1, 0, 1);
  for (std::size_t i = 2; i < txs; ++i) {
    const auto p = static_cast<ProcessId>(i);
    b.read(p, 0, static_cast<Word>(i - 1));
    b.write(p, 0, static_cast<Word>(i));
  }
  for (std::size_t i = 0; i < txs; ++i) b.commit(static_cast<ProcessId>(i));
  return b.build();
}

TEST(Inconclusive, OneMillisecondDeadlineVoidsTheComparison) {
  // Regression for the verdict-accounting contract: a deadline-stopped
  // check is neither a mismatch nor a violation — the instance is voided.
  fuzz::DiffOptions diff;
  diff.serial.maxExpansions = 0;
  diff.serial.timeout = std::chrono::milliseconds(1);
  diff.parallel = diff.serial;
  diff.parallel.threads = 4;
  fuzz::GeneratedInstance gen;
  gen.history = hiddenWitnessHistory(9);
  const fuzz::DiffOutcome out =
      fuzz::diffCheckHistory(gen, scModel(), diff);
  EXPECT_TRUE(out.inconclusive);
  EXPECT_FALSE(out.mismatch) << out.description;
}

TEST(Inconclusive, DriverNeverCountsOrPersistsResourceStops) {
  // With a 1-expansion budget every engine check stops on its budget; the
  // run must end with zero failures, no repro files, and the voided
  // instances accounted under `inconclusive`.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jungle_fuzz_inconclusive")
          .string();
  std::filesystem::remove_all(dir);
  fuzz::FuzzOptions opts;
  opts.mode = fuzz::FuzzOptions::Mode::kEngineDiff;
  opts.seed = 5;
  opts.iterations = 25;
  opts.reproDir = dir;
  opts.checkLimits.maxExpansions = 1;
  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  EXPECT_EQ(report.disagreements, 0u) << fuzz::formatReport(opts, report);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_GT(report.inconclusive, 0u);
  // Nothing may be persisted for a voided instance; the repro directory is
  // only ever created for real failures.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(Inconclusive, TraceConformanceBudgetStopIsReportedAsSuch) {
  // The trace-mode analogue: a budget-stopped checkTracePopacity must set
  // inconclusive so the fuzz loop can exclude it (ConformanceResult's
  // negative-without-exhaustion contract).
  theorems::StressOptions stress;
  stress.seed = 9;
  RecordingMemory mem(runtimeMemoryWords(TmKind::kVersionedWrite, 3));
  auto tm = makeRecordingRuntime(TmKind::kVersionedWrite, mem, 3, 3);
  const Trace r = theorems::runStressWorkload(*tm, mem, stress);
  SearchLimits tiny;
  tiny.maxExpansions = 1;
  const theorems::ConformanceResult res =
      theorems::checkTracePopacity(r, alphaModel(), kRegisters, tiny);
  if (!res.ok) {
    EXPECT_TRUE(res.inconclusive);
  }
}

// --------------------------------------------- telemetry contract (stats)

TEST(Telemetry, AllFourEntryPointsPopulateStats) {
  // The PR 1 stats fields must not silently rot: every entry point reports
  // real expansions, nonzero elapsed time, and the configured threads.
  const History h = litmus::fig3History(1, 1);
  for (unsigned threads : {1u, 3u}) {
    SearchLimits limits;
    limits.threads = threads;
    SglaOptions sglaOpts;
    sglaOpts.limits = limits;
    const CheckResult results[] = {
        checkParametrizedOpacity(h, rmoModel(), kRegisters, limits),
        checkOpacity(h, kRegisters, limits),
        checkStrictSerializability(h, kRegisters, limits),
        checkSgla(h, scModel(), kRegisters, sglaOpts),
    };
    const char* names[] = {"popacity", "opacity", "strict-ser", "sgla"};
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GT(results[i].stats.expansions, 0u) << names[i];
      EXPECT_GT(results[i].stats.elapsed.count(), 0) << names[i];
      EXPECT_EQ(results[i].stats.threadsUsed, threads) << names[i];
      EXPECT_GT(results[i].stats.branchesExplored, 0u) << names[i];
    }
  }
}

}  // namespace
}  // namespace jungle
