// Store-buffer hardware simulator tests, including the cross-validation
// that ties the operational (buffers) and axiomatic (views) formalizations
// of TSO together on the paper's litmus shapes.
#include <gtest/gtest.h>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "sim/store_buffer.hpp"

namespace jungle {
namespace {

using sb::BufferKind;
using sb::enumerateOutcomes;
using sb::Outcome;
using sb::stFence;
using sb::stLoad;
using sb::stStore;
using sb::ThreadProgram;

constexpr Addr kX = 0;
constexpr Addr kY = 1;

bool contains(const std::set<Outcome>& outcomes, const Outcome& o) {
  return outcomes.count(o) > 0;
}

// ------------------------------------------------------- store buffering

std::vector<ThreadProgram> sbProgram() {
  // p0: x := 1; r0 := y.   p1: y := 1; r0 := x.
  return {{stStore(kX, 1), stLoad(kY, 0)}, {stStore(kY, 1), stLoad(kX, 0)}};
}

TEST(StoreBuffer, TsoAllowsBothReadsZero) {
  auto outcomes = enumerateOutcomes(sbProgram(), BufferKind::kTso, 4, 1);
  EXPECT_TRUE(contains(outcomes, {0, 0}));  // the classic SB relaxation
  EXPECT_TRUE(contains(outcomes, {1, 1}));
  EXPECT_TRUE(contains(outcomes, {0, 1}));
  EXPECT_TRUE(contains(outcomes, {1, 0}));
}

TEST(StoreBuffer, FencesRestoreSequentialConsistency) {
  std::vector<ThreadProgram> progs{
      {stStore(kX, 1), stFence(), stLoad(kY, 0)},
      {stStore(kY, 1), stFence(), stLoad(kX, 0)}};
  auto outcomes = enumerateOutcomes(progs, BufferKind::kTso, 4, 1);
  EXPECT_FALSE(contains(outcomes, {0, 0}));
}

// ------------------------------------------------------ message passing

std::vector<ThreadProgram> mpProgram() {
  // p0: x := 1; y := 1.   p1: r0 := y; r1 := x.
  return {{stStore(kX, 1), stStore(kY, 1)},
          {stLoad(kY, 0), stLoad(kX, 1)}};
}

TEST(MessagePassing, TsoKeepsWritesOrdered) {
  auto outcomes = enumerateOutcomes(mpProgram(), BufferKind::kTso, 4, 2);
  // (r0, r1) = (1, 0) would need W→W or R→R reordering: impossible on TSO.
  for (const Outcome& o : outcomes) {
    if (o[2] == 1) EXPECT_EQ(o[3], 1u) << "MP violation on TSO";
  }
}

TEST(MessagePassing, PsoAllowsTheViolation) {
  auto outcomes = enumerateOutcomes(mpProgram(), BufferKind::kPso, 4, 2);
  bool violation = false;
  for (const Outcome& o : outcomes) {
    if (o[2] == 1 && o[3] == 0) violation = true;
  }
  EXPECT_TRUE(violation);
}

TEST(MessagePassing, PsoFenceBetweenWritesRestoresOrder) {
  std::vector<ThreadProgram> progs{
      {stStore(kX, 1), stFence(), stStore(kY, 1)},
      {stLoad(kY, 0), stLoad(kX, 1)}};
  auto outcomes = enumerateOutcomes(progs, BufferKind::kPso, 4, 2);
  for (const Outcome& o : outcomes) {
    if (o[2] == 1) EXPECT_EQ(o[3], 1u);
  }
}

// ---------------------------------------------------------- forwarding

TEST(Forwarding, OwnStoreVisibleBeforeDrain) {
  // p0: x := 1; r0 := x — must see its own buffered store even if nothing
  // drained yet; and p1 can still read 0 concurrently.
  std::vector<ThreadProgram> progs{{stStore(kX, 1), stLoad(kX, 0)},
                                   {stLoad(kX, 0)}};
  auto outcomes = enumerateOutcomes(progs, BufferKind::kTso, 4, 1);
  for (const Outcome& o : outcomes) {
    EXPECT_EQ(o[0], 1u) << "own store must be forwarded";
  }
  // p1 may read 0 (store not drained) or 1 (drained).
  EXPECT_TRUE(contains(outcomes, {1, 0}));
  EXPECT_TRUE(contains(outcomes, {1, 1}));
}

// ------------------------------------- operational vs axiomatic cross-check

TEST(CrossValidation, TsoBufferOutcomesMatchTheLogicalModelOnSb) {
  // For the store-buffering litmus, the set of (r1, r2) the operational
  // TSO machine reaches equals the set the axiomatic TSO view model admits
  // via parametrized opacity on the corresponding histories.
  auto outcomes = enumerateOutcomes(sbProgram(), BufferKind::kTso, 4, 1);
  SpecMap specs;
  for (Word r1 = 0; r1 <= 1; ++r1) {
    for (Word r2 = 0; r2 <= 1; ++r2) {
      const bool operational = contains(outcomes, {r1, r2});
      const bool axiomatic =
          checkParametrizedOpacity(litmus::storeBufferHistory(r1, r2),
                                   tsoModel(), specs)
              .satisfied;
      EXPECT_EQ(operational, axiomatic) << "(" << r1 << "," << r2 << ")";
    }
  }
}

TEST(CrossValidation, MpOutcomesMatchOnTsoAndPso) {
  auto tso = enumerateOutcomes(mpProgram(), BufferKind::kTso, 4, 2);
  auto pso = enumerateOutcomes(mpProgram(), BufferKind::kPso, 4, 2);
  SpecMap specs;
  for (Word r1 = 0; r1 <= 1; ++r1) {
    for (Word r2 = 0; r2 <= 1; ++r2) {
      // fig2b is exactly MP with (r1 = y-read, r2 = x-read); p0 executes
      // no loads, so its registers stay 0 in every outcome.
      History h = litmus::fig2bHistory(r1, r2);
      EXPECT_EQ(contains(tso, {0, 0, r1, r2}),
                checkParametrizedOpacity(h, tsoModel(), specs).satisfied)
          << "TSO (" << r1 << "," << r2 << ")";
      EXPECT_EQ(contains(pso, {0, 0, r1, r2}),
                checkParametrizedOpacity(h, psoModel(), specs).satisfied)
          << "PSO (" << r1 << "," << r2 << ")";
    }
  }
}


// --------------------------------------- multi-copy atomicity (WRC, IRIW)

TEST(CrossValidation, WrcForbiddenOnTsoBothWays) {
  // Write-to-read causality: p0: x := 1.  p1: r0 := x; y := 1.
  // p2: r0 := y; r1 := x.  The outcome (p1 saw x=1, p2 saw y=1 but x=0)
  // is forbidden on TSO operationally (stores drain to shared memory, so
  // visibility is transitive) and axiomatically (R→W and R→R kept).
  std::vector<ThreadProgram> progs{
      {stStore(kX, 1)},
      {stLoad(kX, 0), stStore(kY, 1)},
      {stLoad(kY, 0), stLoad(kX, 1)}};
  auto outcomes = enumerateOutcomes(progs, BufferKind::kTso, 4, 2);
  for (const Outcome& o : outcomes) {
    const Word p1x = o[2], p2y = o[4], p2x = o[5];
    EXPECT_FALSE(p1x == 1 && p2y == 1 && p2x == 0) << "WRC violation";
  }
  // Axiomatic side: the same outcome as a history.
  HistoryBuilder b;
  b.write(0, 0, 1);
  b.read(1, 0, 1);
  b.write(1, 1, 1);
  b.read(2, 1, 1);
  b.read(2, 0, 0);
  SpecMap specs;
  EXPECT_FALSE(
      checkParametrizedOpacity(b.build(), tsoModel(), specs).satisfied);
  // RMO relaxes the reader chains: allowed.
  EXPECT_TRUE(
      checkParametrizedOpacity(b.build(), rmoModel(), specs).satisfied);
}

TEST(CrossValidation, IriwForbiddenOnTsoBuffers) {
  // Store buffers are multi-copy atomic: the IRIW contradictory
  // observation is unreachable operationally, matching the axiomatic TSO
  // verdict (test_litmus_matrix pins the axiomatic side).
  std::vector<ThreadProgram> progs{
      {stStore(kX, 1)},
      {stStore(kY, 1)},
      {stLoad(kX, 0), stLoad(kY, 1)},
      {stLoad(kY, 0), stLoad(kX, 1)}};
  auto outcomes = enumerateOutcomes(progs, BufferKind::kTso, 4, 2);
  for (const Outcome& o : outcomes) {
    const Word p2x = o[4], p2y = o[5], p3y = o[6], p3x = o[7];
    EXPECT_FALSE(p2x == 1 && p2y == 0 && p3y == 1 && p3x == 0)
        << "IRIW violation on TSO buffers";
  }
  // Sanity: the consistent observation is reachable.
  bool consistent = false;
  for (const Outcome& o : outcomes) {
    if (o[4] == 1 && o[5] == 1 && o[6] == 1 && o[7] == 1) consistent = true;
  }
  EXPECT_TRUE(consistent);
}

TEST(StoreBuffer, PsoStillForbidsWrcThroughSameAddressOrder) {
  // Even PSO keeps per-address drain order: p1's read of x=1 means x has
  // drained, so p2 reading y=1 (drained after p1's store) still cannot
  // miss x... unless y drains before x from p1's buffer — but p1 never
  // buffers x.  The observation stays forbidden.
  std::vector<ThreadProgram> progs{
      {stStore(kX, 1)},
      {stLoad(kX, 0), stStore(kY, 1)},
      {stLoad(kY, 0), stLoad(kX, 1)}};
  auto outcomes = enumerateOutcomes(progs, BufferKind::kPso, 4, 2);
  for (const Outcome& o : outcomes) {
    EXPECT_FALSE(o[2] == 1 && o[4] == 1 && o[5] == 0);
  }
}

}  // namespace
}  // namespace jungle
