// Tests for the systematic-schedule explorer, culminating in the flagship
// result: exhaustive exploration of the uninstrumented global-lock TM
// *automatically discovers* Theorem 1's adversarial interleaving (plain
// reads slipping between commit-time updates violate SC-parametrized
// opacity), while every schedule is explainable under the idealized model
// (Theorem 3) — and the instrumented strong-atomicity TM passes SC on all
// schedules.
#include <gtest/gtest.h>

#include "memmodel/models.hpp"
#include "sim/exploration.hpp"
#include "theorems/conformance.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/versioned_write_tm.hpp"

namespace jungle {
namespace {

SpecMap kRegisters;

// ------------------------------------------------------------- plumbing

// Each thread performs `opsPerThread` single-instruction operations.
Program plainStores(std::size_t threads, std::size_t opsPerThread) {
  return [threads, opsPerThread](ScheduledMemory& mem) {
    std::vector<ThreadScript> scripts;
    for (std::size_t p = 0; p < threads; ++p) {
      scripts.push_back([&mem, p, opsPerThread] {
        for (std::size_t i = 0; i < opsPerThread; ++i) {
          const auto pid = static_cast<ProcessId>(p);
          const OpId op =
              mem.beginOp(pid, OpType::kCommand, 0, cmdWrite(1));
          mem.store(pid, 0, 1);
          mem.endOp(pid, op, OpType::kCommand, 0, cmdWrite(1));
        }
      });
    }
    return scripts;
  };
}

TEST(Explorer, CountsInterleavingsOfIndependentSteps) {
  // 2 threads × 1 instruction: 2 interleavings.
  auto stats = exploreExhaustive(2, 4, plainStores(2, 1),
                                 [](const RunOutcome&) { return true; });
  EXPECT_EQ(stats.runs, 2u);
  EXPECT_EQ(stats.completedRuns, 2u);
  EXPECT_EQ(stats.cutRuns, 0u);
  // 2 threads × 2 instructions: C(4,2) = 6 interleavings.
  stats = exploreExhaustive(2, 4, plainStores(2, 2),
                            [](const RunOutcome&) { return true; });
  EXPECT_EQ(stats.runs, 6u);
  // 3 threads × 1 instruction: 3! = 6.
  stats = exploreExhaustive(3, 4, plainStores(3, 1),
                            [](const RunOutcome&) { return true; });
  EXPECT_EQ(stats.runs, 6u);
}

TEST(Explorer, SchedulesAreRecordedAndReplayable) {
  std::vector<std::vector<ProcessId>> schedules;
  exploreExhaustive(2, 4, plainStores(2, 2), [&](const RunOutcome& out) {
    schedules.push_back(out.schedule);
    EXPECT_TRUE(traceWellFormed(out.trace));
    EXPECT_TRUE(traceMachineConsistent(out.trace));
    return true;
  });
  ASSERT_EQ(schedules.size(), 6u);
  // All schedules distinct.
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    for (std::size_t j = i + 1; j < schedules.size(); ++j) {
      EXPECT_NE(schedules[i], schedules[j]);
    }
  }
}

TEST(Explorer, StepBoundCutsRunawaySchedules) {
  // One thread spinning on a flag another thread never sets within the
  // bound: the unfair schedules are cut, not hung.
  Program spin = [](ScheduledMemory& mem) {
    std::vector<ThreadScript> scripts;
    scripts.push_back([&mem] {
      const OpId op = mem.beginOp(0, OpType::kCommand, 0, cmdRead(0));
      while (mem.load(0, 0) == 0) {
      }
      mem.endOp(0, op, OpType::kCommand, 0, cmdRead(1));
    });
    scripts.push_back([&mem] {
      const OpId op = mem.beginOp(1, OpType::kCommand, 0, cmdWrite(1));
      mem.store(1, 0, 1);
      mem.endOp(1, op, OpType::kCommand, 0, cmdWrite(1));
    });
    return scripts;
  };
  ExploreOptions opts;
  opts.maxSteps = 30;
  opts.maxRuns = 50;
  auto stats = exploreExhaustive(2, 4, spin,
                                 [](const RunOutcome&) { return true; },
                                 opts);
  EXPECT_GT(stats.completedRuns, 0u);
  EXPECT_GT(stats.cutRuns, 0u);
}

TEST(Explorer, RandomModeSamplesRequestedRuns) {
  ExploreOptions opts;
  opts.samples = 17;
  auto stats = exploreRandom(2, 4, plainStores(2, 2),
                             [](const RunOutcome&) { return true; }, opts);
  EXPECT_EQ(stats.runs, 17u);
  EXPECT_EQ(stats.completedRuns, 17u);
}

// --------------------------------------------- model-checking the TMs

// p0 transactionally writes x and y; p1 reads x then y with plain loads.
template <class Tm>
Program figure1Program() {
  return [](ScheduledMemory& mem) {
    // The TM object must outlive the scripts; share ownership.
    auto tm = std::make_shared<Tm>(mem, /*numVars=*/2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      (void)tm->ntRead(t, 0);
      (void)tm->ntRead(t, 1);
    });
    return scripts;
  };
}

TEST(ModelCheck, GlobalLockPassesIdealizedOnAllSchedules) {
  // Theorem 3, verified by exhaustive interleaving.
  ExploreOptions opts;
  opts.maxSteps = 60;
  opts.maxRuns = 1500;
  auto stats = exploreExhaustive(
      2, GlobalLockTm<ScheduledMemory>::memoryWords(2),
      figure1Program<GlobalLockTm<ScheduledMemory>>(),
      [&](const RunOutcome& out) {
        return theorems::checkTracePopacity(out.trace, idealizedModel(),
                                            kRegisters)
            .ok;
      },
      opts);
  EXPECT_GT(stats.completedRuns, 5u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ModelCheck, ExplorerDiscoversTheScViolationOfTheorem1) {
  // The same uninstrumented TM checked against SC-parametrized opacity:
  // the explorer must FIND schedules where p1's plain reads land between
  // the commit's two CASes — exactly Figure 5(b).
  ExploreOptions opts;
  opts.maxSteps = 60;
  opts.maxRuns = 1500;
  auto stats = exploreExhaustive(
      2, GlobalLockTm<ScheduledMemory>::memoryWords(2),
      figure1Program<GlobalLockTm<ScheduledMemory>>(),
      [&](const RunOutcome& out) {
        return theorems::checkTracePopacity(out.trace, scModel(), kRegisters)
            .ok;
      },
      opts);
  EXPECT_GT(stats.failures, 0u) << "Theorem 1's interleaving not found";
  // And plenty of schedules are fine under SC too (reads before/after the
  // commit) — the violation is interleaving-specific.
  EXPECT_GT(stats.completedRuns, stats.failures);
}

TEST(ModelCheck, StrongAtomicityPassesScOnAllSchedules) {
  ExploreOptions opts;
  opts.maxSteps = 100;
  opts.maxRuns = 1500;
  auto stats = exploreExhaustive(
      2, StrongAtomicityTm<ScheduledMemory>::memoryWords(2),
      figure1Program<StrongAtomicityTm<ScheduledMemory>>(),
      [&](const RunOutcome& out) {
        return theorems::checkTracePopacity(out.trace, scModel(), kRegisters)
            .ok;
      },
      opts);
  EXPECT_GT(stats.completedRuns, 5u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ModelCheck, VersionedWritePassesAlphaWithRacyPlainWrites) {
  // Theorem 5 under exhaustive schedules: a transaction on x races a plain
  // write to x and a plain read chain; every completed schedule must admit
  // an Alpha-opaque history.
  Program program = [](ScheduledMemory& mem) {
    auto tm = std::make_shared<VersionedWriteTm<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      tm->ntWrite(t, 0, 7);
      (void)tm->ntRead(t, 1);
      (void)tm->ntRead(t, 0);
    });
    return scripts;
  };
  ExploreOptions opts;
  opts.maxSteps = 80;
  opts.maxRuns = 1800;
  auto stats = exploreExhaustive(
      2, VersionedWriteTm<ScheduledMemory>::memoryWords(2), program,
      [&](const RunOutcome& out) {
        return theorems::checkTracePopacity(out.trace, alphaModel(),
                                            kRegisters)
            .ok;
      },
      opts);
  EXPECT_GT(stats.completedRuns, 5u);
  EXPECT_EQ(stats.failures, 0u);
}

}  // namespace
}  // namespace jungle
