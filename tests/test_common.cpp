// Tests for the common utilities: RNG determinism, bitsets, hashing, and
// synchronization helpers.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bitset64.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/zipf.hpp"

namespace jungle {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  for (int i = 0; i < 200; ++i) {
    const auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0, 100));
    EXPECT_TRUE(r.chance(100, 100));
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000, 0.5, 0.05);
}

TEST(Splitmix, DeterministicSequence) {
  std::uint64_t s1 = 5, s2 = 5;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Bitset, SetResetTestCount) {
  BitsetN<2> b;
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(127);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(62));
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, ContainsAndIntersects) {
  BitsetN<2> a, b;
  a.set(1);
  a.set(100);
  b.set(100);
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_TRUE(a.intersects(b));
  BitsetN<2> c;
  c.set(2);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.contains(BitsetN<2>{}));  // empty set always contained
}

TEST(Bitset, EqualityAndHash) {
  BitsetN<2> a, b;
  a.set(5);
  b.set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(70);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hashAll(1, 2), hashAll(2, 1));
  EXPECT_EQ(hashAll(1, 2, 3), hashAll(1, 2, 3));
}

TEST(SpinBarrier, SynchronizesThreads) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase0{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      phase0.fetch_add(1);
      barrier.arriveAndWait();
      // After the barrier, every thread must observe all arrivals.
      if (phase0.load() != kThreads) ok = false;
      barrier.arriveAndWait();  // reusable
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_TRUE(ok);
}

TEST(Backoff, PauseAndResetDoNotBlock) {
  Backoff b;
  for (int i = 0; i < 20; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

// --------------------------------------------------------------- Zipfian

TEST(Zipfian, DrawsStayInRangeAndAreDeterministic) {
  const Zipfian z(100, 0.9);
  Rng a(11), b(11);
  for (int i = 0; i < 2000; ++i) {
    const auto v = z.next(a);
    EXPECT_LT(v, 100u);
    EXPECT_EQ(v, z.next(b));  // same Rng stream, same draw
  }
}

TEST(Zipfian, ThetaZeroDegeneratesToUniform) {
  const Zipfian z(8, 0.0);
  Rng zr(21), ur(21);
  for (int i = 0; i < 500; ++i) {
    // Must consume the Rng stream exactly like the uniform path.
    EXPECT_EQ(z.next(zr), ur.below(8));
  }
}

TEST(Zipfian, SkewConcentratesMassOnTheHotRanks) {
  constexpr std::uint64_t kN = 1000;
  constexpr int kDraws = 20000;
  const Zipfian skewed(kN, 0.99);
  const Zipfian uniform(kN, 0.0);
  Rng rs(5), ru(5);
  int hotSkewed = 0;
  int hotUniform = 0;
  for (int i = 0; i < kDraws; ++i) {
    hotSkewed += skewed.next(rs) < 10 ? 1 : 0;
    hotUniform += uniform.next(ru) < 10 ? 1 : 0;
  }
  // theta=0.99 puts >30% of the mass on the 10 hottest of 1000 ranks
  // (analytically ~40%); uniform puts ~1% there.
  EXPECT_GT(hotSkewed, kDraws * 30 / 100);
  EXPECT_LT(hotUniform, kDraws * 5 / 100);
}

TEST(Zipfian, RankZeroIsTheHottestKey) {
  const Zipfian z(64, 0.9);
  Rng r(3);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.next(r)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[63] * 4);
}

TEST(Zipfian, SingleKeyAlwaysDrawsZero) {
  const Zipfian z(1, 0.9);
  Rng r(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(z.next(r), 0u);
}

TEST(ZipfianDeathTest, ThetaOneIsRejected) {
  // The YCSB eta denominator vanishes at theta == 1.
  EXPECT_DEATH((Zipfian(10, 1.0)), "check failed");
}

}  // namespace
}  // namespace jungle
